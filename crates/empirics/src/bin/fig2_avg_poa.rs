//! Reproduces Figure 2: average price of anarchy of equilibrium networks
//! in the BCG (pairwise stable) and the UCG (Nash) as a function of link
//! cost, over all connected non-isomorphic topologies on n vertices.
//!
//! Usage: fig2_avg_poa [--n 7] [--threads T] [--csv] [--streaming]
//!        [--shards auto|R] [--jobs N] [--atlas PATH]
//!        [--grid paper|linear:LO:HI:STEPS|log2:LO:HI:PER_OCT]
//!
//! (The paper used n = 10; see DESIGN.md §4 for the n-substitution.
//! `--streaming` classifies graphs as the enumeration generates them —
//! same output bit for bit, and the enumeration never materializes the
//! graph list (its memory is one level's frontier; the per-topology
//! records still scale with the count). Combine with the BNF_MAX_N env
//! var for n ≥ 9. `--atlas` persists the α-independent window records
//! so re-runs skip classification; `--grid` evaluates any α axis as a
//! free post-pass over the same records.)

use bnf_empirics::{
    arg_flag, arg_value, fmt_stat, render_csv, render_table, run_sweep_cli, SweepConfig,
};
use bnf_games::GameKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = arg_value(&args, "--n").map_or(7, |v| v.parse().expect("--n wants a number"));
    let mut config = SweepConfig::standard(n);
    if let Some(t) = arg_value(&args, "--threads") {
        config.threads = t.parse().expect("--threads wants a number");
    }
    let sweep = run_sweep_cli(&config, &args);
    let bcg = sweep.stats(GameKind::Bilateral);
    let ucg = sweep.stats(GameKind::Unilateral);
    let headers = [
        "alpha",
        "log2(a)",
        "log2(2a)",
        "BCG#",
        "BCG avgPoA",
        "UCG#",
        "UCG avgPoA",
    ];
    let rows: Vec<Vec<String>> = bcg
        .iter()
        .zip(&ucg)
        .map(|(b, u)| {
            vec![
                b.alpha.to_string(),
                fmt_stat(b.alpha.to_f64().log2()),
                fmt_stat((2.0 * b.alpha.to_f64()).log2()),
                b.count.to_string(),
                fmt_stat(b.mean_poa),
                u.count.to_string(),
                fmt_stat(u.mean_poa),
            ]
        })
        .collect();
    if arg_flag(&args, "--csv") {
        print!("{}", render_csv(&headers, &rows));
    } else {
        println!("Figure 2 — average PoA of equilibrium networks, n={n}");
        println!("(x-axis in the paper: log(alpha) for UCG, log(2*alpha) for BCG)\n");
        println!("{}", render_table(&headers, &rows));
        // The paper overlays the curves with the BCG shifted to log(2α):
        // at x-coordinate log(a), compare UCG at link cost a with BCG at
        // link cost a/2 (equal per-edge social spend).
        let aligned: Vec<Vec<String>> = bcg
            .iter()
            .filter_map(|b| {
                let target = b.alpha + b.alpha; // UCG at 2α
                let u = ucg.iter().find(|u| u.alpha == target)?;
                Some(vec![
                    fmt_stat((2.0 * b.alpha.to_f64()).log2()),
                    b.alpha.to_string(),
                    fmt_stat(b.mean_poa),
                    u.alpha.to_string(),
                    fmt_stat(u.mean_poa),
                    if b.mean_poa < u.mean_poa {
                        "BCG"
                    } else {
                        "UCG"
                    }
                    .to_string(),
                ])
            })
            .collect();
        println!("\nPaper-aligned overlay (same x = log(2a_BCG) = log(a_UCG)):\n");
        println!(
            "{}",
            render_table(
                &["x", "a_BCG", "BCG avgPoA", "a_UCG", "UCG avgPoA", "better"],
                &aligned
            )
        );
        let violations: usize = sweep.conjecture_violations().iter().map(|&(_, c)| c).sum();
        println!("Section 4.3 conjecture (UCG-Nash ⊆ BCG-stable): {violations} violations across the grid");
    }
}
