//! Verifies Lemmas 4 and 5 exhaustively: at each link cost the efficient
//! graph over ALL connected topologies is the complete graph (alpha < 1),
//! the star (alpha > 1), and exactly those two tie at alpha = 1; reports
//! uniqueness of the minimizer. Thin fold over the shared window-record
//! sweep (`bnf_empirics::efficiency`), so it rides the same `--atlas`
//! cache as the figure binaries.
//!
//! Usage: efficiency_scan [--n 7] [--threads T] [--streaming]
//!        [--shards auto|R] [--jobs N] [--atlas PATH]
//!        [--grid paper|linear:LO:HI:STEPS|log2:LO:HI:PER_OCT]

use bnf_empirics::MinimizerShape;
use bnf_empirics::{
    arg_value, default_threads, efficiency_scan_windows, grid_from_args, render_table,
    run_window_sweep_cli,
};
use bnf_games::Ratio;

/// Lists small minimizer sets verbatim; summarizes by shape otherwise
/// (at α = 1 every diameter-≤ 2 graph ties, which at n = 9 is tens of
/// thousands of entries — unprintable as a table cell).
fn minimizer_cell(minimizers: &[MinimizerShape]) -> String {
    if minimizers.len() <= 8 {
        return minimizers
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("+");
    }
    let complete = minimizers
        .iter()
        .filter(|s| matches!(s, MinimizerShape::Complete))
        .count();
    let star = minimizers
        .iter()
        .filter(|s| matches!(s, MinimizerShape::Star))
        .count();
    let other = minimizers.len() - complete - star;
    let mut parts = Vec::new();
    for (count, label) in [(complete, "complete"), (star, "star"), (other, "other")] {
        if count > 0 {
            parts.push(format!("{label}x{count}"));
        }
    }
    parts.join("+")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = arg_value(&args, "--n").map_or(7, |v| v.parse().expect("--n wants a number"));
    let threads: usize = arg_value(&args, "--threads").map_or_else(default_threads, |v| {
        v.parse().expect("--threads wants a number")
    });
    let alphas = grid_from_args(&args, || {
        vec![
            Ratio::new(1, 4),
            Ratio::new(1, 2),
            Ratio::new(3, 4),
            Ratio::ONE,
            Ratio::new(3, 2),
            Ratio::from(2),
            Ratio::from(4),
            Ratio::from(8),
        ]
    });
    let windows = run_window_sweep_cli(n, threads, &args);
    let scan = efficiency_scan_windows(&windows, &alphas);
    let rows: Vec<Vec<String>> = scan
        .rows
        .iter()
        .map(|r| {
            vec![
                r.alpha.to_string(),
                r.min_cost.to_string(),
                r.formula.to_string(),
                r.matches.to_string(),
                r.minimizers.len().to_string(),
                minimizer_cell(&r.minimizers),
            ]
        })
        .collect();
    println!(
        "Lemmas 4/5 — exhaustive efficiency check over all {} connected topologies, n={n}\n",
        scan.topologies
    );
    println!(
        "{}",
        render_table(
            &[
                "alpha",
                "min C(G)",
                "formula",
                "match",
                "#minimizers",
                "minimizer(s)"
            ],
            &rows
        )
    );
}
