//! Verifies Lemmas 4 and 5 exhaustively: at each link cost the efficient
//! graph over ALL connected topologies is the complete graph (alpha < 1),
//! the star (alpha > 1), and exactly those two tie at alpha = 1; reports
//! uniqueness of the minimizer.
//!
//! Usage: efficiency_scan [--n 7]

use bnf_empirics::{arg_value, render_table};
use bnf_enumerate::connected_graphs;
use bnf_games::{optimal_social_cost, CostSummary, GameKind, Ratio};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = arg_value(&args, "--n").map_or(7, |v| v.parse().expect("--n wants a number"));
    let graphs = connected_graphs(n);
    let summaries: Vec<CostSummary> = graphs
        .iter()
        .map(|g| CostSummary::of(g, GameKind::Bilateral))
        .collect();
    let alphas = [
        Ratio::new(1, 4), Ratio::new(1, 2), Ratio::new(3, 4), Ratio::ONE,
        Ratio::new(3, 2), Ratio::from(2), Ratio::from(4), Ratio::from(8),
    ];
    let mut rows = Vec::new();
    for alpha in alphas {
        let costs: Vec<Ratio> = summaries
            .iter()
            .map(|s| s.social_cost_exact(alpha).expect("connected"))
            .collect();
        let min = costs.iter().copied().min().expect("nonempty enumeration");
        let argmins: Vec<usize> =
            (0..costs.len()).filter(|&i| costs[i] == min).collect();
        let formula = optimal_social_cost(GameKind::Bilateral, n, alpha);
        let shapes: Vec<String> = argmins
            .iter()
            .map(|&i| {
                let g = &graphs[i];
                if g.edge_count() == n * (n - 1) / 2 {
                    "complete".into()
                } else if g.is_tree() && (0..n).any(|v| g.degree(v) == n - 1) {
                    "star".into()
                } else {
                    format!("other(m={})", g.edge_count())
                }
            })
            .collect();
        rows.push(vec![
            alpha.to_string(),
            min.to_string(),
            formula.to_string(),
            (min == formula).to_string(),
            argmins.len().to_string(),
            shapes.join("+"),
        ]);
    }
    println!("Lemmas 4/5 — exhaustive efficiency check over all {} connected topologies, n={n}\n", graphs.len());
    println!(
        "{}",
        render_table(
            &["alpha", "min C(G)", "formula", "match", "#minimizers", "minimizer(s)"],
            &rows
        )
    );
}
