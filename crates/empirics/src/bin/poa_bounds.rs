//! Reproduces the Proposition 3 / Proposition 4 bound experiments:
//! the Moore-bound lower-bound series (PoA vs log2 alpha over the cage
//! and Moore graphs) and the empirical worst-case PoA against the
//! min(sqrt(a), n/sqrt(a)) envelope.
//!
//! Usage: poa_bounds [--n 7] [--threads T] [--streaming]
//!        [--shards auto|R] [--jobs N] [--atlas PATH]
//!        [--grid paper|linear:LO:HI:STEPS|log2:LO:HI:PER_OCT]
//!
//! The Prop 4 table reads the same shared window records as the figure
//! sweeps (no inline window extraction of its own), so `--atlas` makes
//! its exhaustive half incremental too.

use bnf_empirics::{
    arg_value, fmt_stat, prop3_series, prop4_rows, render_table, run_sweep_cli, SweepConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("Proposition 3 — Moore-bound family: stable windows and PoA growth\n");
    let rows: Vec<Vec<String>> = prop3_series()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.n.to_string(),
                r.degree.to_string(),
                r.girth.to_string(),
                r.diameter.to_string(),
                r.alpha_top.to_string(),
                fmt_stat(r.log2_alpha),
                fmt_stat(r.poa),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "graph",
                "n",
                "k",
                "girth",
                "diam",
                "alpha_max",
                "log2(alpha)",
                "PoA(alpha_max)"
            ],
            &rows
        )
    );

    let n: usize = arg_value(&args, "--n").map_or(7, |v| v.parse().expect("--n wants a number"));
    let mut config = SweepConfig::standard(n);
    if let Some(t) = arg_value(&args, "--threads") {
        config.threads = t.parse().expect("--threads wants a number");
    }
    // run_sweep_cli prints the enumeration banner and peak RSS.
    let sweep = run_sweep_cli(&config, &args);
    let rows: Vec<Vec<String>> = prop4_rows(&sweep)
        .into_iter()
        .map(|r| {
            vec![
                r.alpha.to_string(),
                fmt_stat(r.max_poa),
                fmt_stat(r.envelope),
                fmt_stat(r.max_poa / r.envelope.max(1.0)),
            ]
        })
        .collect();
    println!("\nProposition 4 — worst-case stable PoA vs the O(min(sqrt(a), n/sqrt(a))) envelope, n={n}\n");
    println!(
        "{}",
        render_table(&["alpha", "max PoA", "envelope", "ratio"], &rows)
    );
}
