//! Reproduces Lemma 6: exact pairwise-stability windows of cycles versus
//! the paper's printed piecewise formulas (paper-vs-measured; the odd
//! alpha_max printed in the sketch differs from the exact value).
//!
//! Usage: lemma6_cycles [--max 20]

use bnf_empirics::{arg_value, lemma6_rows, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max: usize =
        arg_value(&args, "--max").map_or(20, |v| v.parse().expect("--max wants a number"));
    let rows: Vec<Vec<String>> = lemma6_rows(4..=max)
        .into_iter()
        .map(|r| {
            vec![
                format!("C{}", r.n),
                format!("{}{}", if r.exact_min.1 { "[" } else { "(" }, r.exact_min.0),
                r.exact_max.to_string(),
                r.paper_min.to_string(),
                r.paper_max.to_string(),
                if r.max_matches { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!("Lemma 6 — cycle stability windows: exact vs the paper's printed formulas\n");
    println!(
        "{}",
        render_table(
            &[
                "cycle",
                "exact a_min",
                "exact a_max",
                "paper a_min",
                "paper a_max",
                "max match"
            ],
            &rows
        )
    );
    println!("(exact windows are (a_min, a_max] with '[' marking an inclusive lower end)");
}
