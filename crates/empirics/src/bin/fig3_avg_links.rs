//! Reproduces Figure 3: average number of links in equilibrium networks
//! of the BCG and UCG as a function of link cost.
//!
//! Usage: fig3_avg_links [--n 7] [--threads T] [--csv] [--streaming]
//!        [--shards auto|R] [--jobs N] [--atlas PATH]
//!        [--grid paper|linear:LO:HI:STEPS|log2:LO:HI:PER_OCT]

use bnf_empirics::{
    arg_flag, arg_value, fmt_stat, render_csv, render_table, run_sweep_cli, SweepConfig,
};
use bnf_games::GameKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = arg_value(&args, "--n").map_or(7, |v| v.parse().expect("--n wants a number"));
    let mut config = SweepConfig::standard(n);
    if let Some(t) = arg_value(&args, "--threads") {
        config.threads = t.parse().expect("--threads wants a number");
    }
    let sweep = run_sweep_cli(&config, &args);
    let bcg = sweep.stats(GameKind::Bilateral);
    let ucg = sweep.stats(GameKind::Unilateral);
    let headers = [
        "alpha",
        "log2(a)",
        "BCG#",
        "BCG avg links",
        "UCG#",
        "UCG avg links",
    ];
    let rows: Vec<Vec<String>> = bcg
        .iter()
        .zip(&ucg)
        .map(|(b, u)| {
            vec![
                b.alpha.to_string(),
                fmt_stat(b.alpha.to_f64().log2()),
                b.count.to_string(),
                fmt_stat(b.mean_links),
                u.count.to_string(),
                fmt_stat(u.mean_links),
            ]
        })
        .collect();
    if arg_flag(&args, "--csv") {
        print!("{}", render_csv(&headers, &rows));
    } else {
        println!("Figure 3 — average number of links in equilibrium networks, n={n}\n");
        println!("{}", render_table(&headers, &rows));
        let aligned: Vec<Vec<String>> = bcg
            .iter()
            .filter_map(|b| {
                let target = b.alpha + b.alpha;
                let u = ucg.iter().find(|u| u.alpha == target)?;
                Some(vec![
                    fmt_stat((2.0 * b.alpha.to_f64()).log2()),
                    b.alpha.to_string(),
                    fmt_stat(b.mean_links),
                    u.alpha.to_string(),
                    fmt_stat(u.mean_links),
                ])
            })
            .collect();
        println!("\nPaper-aligned overlay (same x = log(2a_BCG) = log(a_UCG)):\n");
        println!(
            "{}",
            render_table(
                &["x", "a_BCG", "BCG avg links", "a_UCG", "UCG avg links"],
                &aligned
            )
        );
    }
}
