//! Empirical harness reproducing the evaluation of Corbo & Parkes
//! (PODC 2005).
//!
//! Each figure of the paper has a module and a binary:
//!
//! | Paper item | Module | Binary |
//! |---|---|---|
//! | Figure 1 (stable-graph gallery) | [`gallery`] | `fig1_gallery` |
//! | Figure 2 (average PoA vs link cost) | [`sweep`] | `fig2_avg_poa` |
//! | Figure 3 (average #links vs link cost) | [`sweep`] | `fig3_avg_links` |
//! | Propositions 3–4 (PoA bounds) | [`bounds`] | `poa_bounds` |
//! | Lemma 6 (cycle windows) | [`cycles`] | `lemma6_cycles` |
//! | Lemmas 4–5 (efficiency) | [`efficiency`] | `efficiency_scan` |
//!
//! Run any of them with `cargo run --release -p bnf-empirics --bin <name>`.
//!
//! Every module is a thin job definition over `bnf-engine`'s
//! [`AnalysisEngine`](bnf_engine::AnalysisEngine): the engine owns
//! enumeration, work-stealing execution and per-worker scratch reuse;
//! the modules own only what to compute per item and how to aggregate.
//!
//! The sweep-driven binaries accept `--streaming` to classify
//! topologies as the enumeration generates them: bit-identical output,
//! no materialized graph list (the enumeration side holds one level's
//! frontier — see `bnf-stream`; the classified records themselves still
//! scale with the topology count). All exhaustive scans honour the
//! `BNF_MAX_N` environment variable ([`max_sweep_n`]) so `n = 9/10`
//! opt-ins need no recompile.
//!
//! Classification is **windows-first** ([`sweep::WindowSweep`]): each
//! topology yields one α-independent window record, any α grid is a
//! post-pass ([`grid`], `--grid paper|linear:..|log2:..`), and
//! `--atlas <path>` persists the records in an append-only store
//! ([`bnf_atlas::ClassificationAtlas`]) so re-runs — finer grids,
//! `--streaming`, follow-up workloads — skip classification for keys
//! already seen.
//!
//! Paper-scale sweeps run the **in-process orchestrator**: `--shards
//! auto` (optionally `--jobs N` for the worker count) builds the parent
//! frontier once, splits it into ≈ 16× threads work-stolen ranges, and
//! streams completed ranges straight into the `--atlas` store with
//! coverage declared when the partition closes — one command, one
//! process, one VmHWM. The multi-process escape hatch remains: `--shard
//! i/m` (with `--atlas` naming the per-shard segment file) classifies
//! one contiguous range and exits; the `shard_merge` binary in
//! `bnf-atlas` folds segments into one coverage-complete store that
//! every binary replays warm. See `crates/atlas/README.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod cycles;
pub mod efficiency;
pub mod gallery;
pub mod grid;
pub mod sweep;
pub mod tables;

use bnf_games::Ratio;

pub use bounds::{prop3_series, prop4_rows, window_top_poa, LowerBoundRow, UpperBoundRow};
// Re-exported so the executor keeps its pre-engine `empirics` path; the
// implementation lives in `bnf-engine` now.
pub use bnf_engine::{default_threads, parallel_map};
pub use cycles::{lemma6_rows, CycleRow};
pub use efficiency::{
    efficiency_rows, efficiency_rows_streaming, efficiency_scan_windows, EfficiencyRow,
    EfficiencyScan, MinimizerShape,
};
pub use gallery::{extended_gallery, figure1_gallery, GalleryEntry};
pub use grid::GridSpec;
pub use sweep::{
    stable_catalog, EquilibriumStats, GraphRecord, SweepConfig, SweepJob, SweepResult, WindowJob,
    WindowSweep,
};
pub use tables::{fmt_stat, render_csv, render_table};

/// Default ceiling on exhaustive sweep orders without an explicit
/// opt-in: the UCG orientation solve over all 261 080 9-vertex graphs
/// needs a deliberate decision (minutes of CPU), not a typo.
pub const DEFAULT_MAX_SWEEP_N: usize = 8;

/// The sweep-order ceiling, overridable at *runtime* via the
/// `BNF_MAX_N` environment variable (clamped to the enumeration bound
/// of 10) so CI smoke steps and `n = 9/10` runs need no recompile.
///
/// Unset or unparsable values fall back to [`DEFAULT_MAX_SWEEP_N`].
pub fn max_sweep_n() -> usize {
    max_sweep_n_from(std::env::var("BNF_MAX_N").ok())
}

/// Pure core of [`max_sweep_n`], split out for testing.
fn max_sweep_n_from(raw: Option<String>) -> usize {
    raw.and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_MAX_SWEEP_N)
        .min(10)
}

// Re-exported from bnf-core (where the shard-segment writers can reach
// it too): each process of a multi-process sweep stamps its own VmHWM.
pub use bnf_core::peak_rss_kb;

/// Shared front-end of the sweep-driven binaries: honours
/// `--streaming`, `--atlas <path>` and `--grid <spec>`, runs the
/// windows-first classification, evaluates the α grid as a post-pass
/// ([`grid::evaluate`]), and prints the shared diagnostics (path,
/// topology count, classification wall time, atlas hit counts, peak
/// RSS) to stderr — so each binary carries one call instead of a
/// drifting copy of this block.
pub fn run_sweep_cli(config: &SweepConfig, args: &[String]) -> SweepResult {
    // Parse the grid *before* the sweep: a typo in --grid must fail in
    // milliseconds, not after minutes of classification.
    let alphas = grid_from_args(args, || config.alphas.clone());
    let windows = run_window_sweep_cli(config.n, config.threads, args);
    grid::evaluate(&windows, &alphas)
}

/// The α grid selected by `--grid <spec>`, or `default()` when the flag
/// is absent — the one shared grid-flag front-end of every sweep
/// binary.
///
/// # Panics
///
/// Panics (with the parse diagnostic) on a malformed spec — a CLI
/// front-end, not a library error path.
pub fn grid_from_args(args: &[String], default: impl FnOnce() -> Vec<Ratio>) -> Vec<Ratio> {
    match arg_value(args, "--grid") {
        Some(spec) => GridSpec::parse(&spec)
            .unwrap_or_else(|e| panic!("bad --grid: {e}"))
            .alphas(),
        None => default(),
    }
}

/// The windows-first half of [`run_sweep_cli`], also used directly by
/// `efficiency_scan`: parses `--streaming` / `--atlas` / `--shards
/// auto|R` / `--jobs N` / `--shard i/m` / `--report-json <path>`,
/// classifies all connected topologies on `n` vertices into a
/// [`WindowSweep`], appends fresh records back to the atlas, and
/// reports the classification wall time in milliseconds (the number
/// the CI cold/warm ≥ 10× gate reads) plus atlas hit counts and peak
/// RSS to stderr.
///
/// Every stderr diagnostic line is rendered from a
/// [`bnf_obs::RunManifest`] ([`build_sweep_manifest`]); with
/// `--report-json <path>` the same manifest — plus the spans, counters
/// and histograms drained from [`bnf_obs::Recorder::global`] — is
/// written as a versioned JSON document. A rate-limited heartbeat
/// (`BNF_PROGRESS`, default every 10 s) reports emitted/expected with
/// an ETA while the enumeration runs.
///
/// With `--shards auto` (or an explicit range count) the sweep runs the
/// **in-process orchestrator** ([`WindowSweep::run_orchestrated`]): the
/// parent frontier is built once, worker threads (`--jobs N`, default
/// `--threads`) steal ranges dynamically, and each completed range is
/// appended to the `--atlas` store with its [`bnf_atlas::ShardMeta`]
/// as it finishes — coverage is declared when the partition closes, so
/// one command replaces the whole `--shard`×m + `shard_merge` cycle.
/// `--jobs N` alone implies `--shards auto`. (A store already holding
/// complete coverage for `n`, or a trivial order `n < 2`, falls back to
/// the standard warm/streaming path.)
///
/// With `--resume` (requires `--atlas`) an interrupted orchestrated run
/// picks up where it was killed: the store is opened through
/// torn-tail recovery ([`bnf_atlas::ClassificationAtlas::open_recovering`]
/// — a frame cut mid-write by the crash is truncated and reported, not
/// refused as corruption), the completed ranges are reconstructed from
/// its [`bnf_atlas::ShardMeta`] frames, and only the missing ranges
/// execute; coverage is declared when the partition closes across runs
/// and the figure output replays from the completed store —
/// byte-identical to an uninterrupted run. Resume provenance (ranges
/// recovered/redone, prior run count, dropped tail bytes) lands in the
/// stderr report and the `--report-json` manifest, whose only
/// gate-facing metric becomes `manifest/ranges_redone_on_resume/{n}`.
///
/// With `--shard i/m` (requires `--atlas`, which names the **segment**
/// file) the invocation classifies only shard `i` of the `m`-way
/// partition of the parent frontier, persists the records plus a
/// [`bnf_atlas::ShardMeta`] frame — range, emission count, wall-clock,
/// this process's peak RSS, pruning-counter shares — into the segment,
/// and **exits the process**: a partial sweep has no meaningful figure
/// output. Fold the segments with `shard_merge` (bnf-atlas) and re-run
/// with `--atlas merged` to replay the complete catalogue. This is the
/// distributed / out-of-core escape hatch; on one machine prefer
/// `--shards auto`.
///
/// # Panics
///
/// Panics (with a diagnostic) when the atlas cannot be opened or
/// appended to, when `--shard` is malformed or lacks `--atlas`, when
/// `--shards` / `--jobs` are malformed, or when `--shard` and
/// `--shards` are combined — a CLI front-end, not a library error path.
pub fn run_window_sweep_cli(n: usize, threads: usize, args: &[String]) -> WindowSweep {
    let streaming = arg_flag(args, "--streaming");
    let path = if streaming {
        "streaming"
    } else {
        "materializing"
    };
    let jobs: Option<usize> = arg_value(args, "--jobs").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--jobs wants a worker-thread count, got {v:?}"))
    });
    let threads = jobs.unwrap_or(threads).max(1);
    let shards = arg_value(args, "--shards");
    let shard = arg_value(args, "--shard")
        .map(|s| bnf_stream::ShardSpec::parse(&s).unwrap_or_else(|e| panic!("bad --shard: {e}")));
    let report_json = arg_value(args, "--report-json");
    let resume = arg_flag(args, "--resume");
    let mut dropped_tail = 0u64;
    let mut atlas = arg_value(args, "--atlas").map(|p| {
        if resume {
            // A store left behind by a killed run may end mid-frame:
            // recovery truncates the torn tail (reporting what it
            // dropped) instead of refusing the whole store as Corrupt.
            let recovered = bnf_atlas::ClassificationAtlas::open_recovering(&p)
                .unwrap_or_else(|e| panic!("cannot recover atlas {p}: {e}"));
            if recovered.report.was_torn() {
                eprintln!("atlas {p}: {}", recovered.report);
            }
            dropped_tail = recovered.report.dropped_bytes;
            recovered.atlas
        } else {
            bnf_atlas::ClassificationAtlas::open(&p)
                .unwrap_or_else(|e| panic!("cannot open atlas {p}: {e}"))
        }
    });
    assert!(
        !resume || atlas.is_some(),
        "--resume reconstructs completed ranges from the interrupted run's store: \
         pass --atlas <path>"
    );
    // Scope the process-wide recorder to this run, then let the
    // enumeration layers heartbeat progress against the known connected
    // count for this order.
    bnf_obs::Recorder::global().take();
    bnf_obs::heartbeat::install(
        &format!("n={n} sweep"),
        bnf_obs::heartbeat::expected_connected(n),
    );
    if let Some(shard) = shard {
        assert!(
            shards.is_none(),
            "--shard (one process of a multi-process partition) and --shards (in-process \
             orchestrator) are mutually exclusive"
        );
        let atlas = atlas
            .as_mut()
            .expect("--shard writes a segment store: pass --atlas <segment path>");
        write_shard_segment(n, threads, shard, atlas, report_json);
    }
    if let Some(atlas) = &atlas {
        // Merged-store provenance: a store assembled by shard_merge or
        // the orchestrator carries per-shard metadata; the RSS summary
        // counts each *process* once (in-process ranges share one), so
        // multi-process truth is neither understated nor double-counted.
        if let Some((max, sum)) = bnf_atlas::ShardMeta::rss_summary(atlas.shard_metas()) {
            eprintln!(
                "atlas provenance: {} shard segments merged across {} process(es); \
                 peak RSS: max {:.1} MiB, sum {:.1} MiB",
                atlas.shard_metas().len(),
                bnf_atlas::ShardMeta::process_count(atlas.shard_metas()),
                max as f64 / 1024.0,
                sum as f64 / 1024.0,
            );
        }
    }
    // `--shards`/`--jobs`/`--resume` opt into the orchestrated path
    // wherever it applies: a frontier exists (n ≥ 2) and the store
    // cannot already replay the order warm. (`--resume` against a store
    // whose coverage already closed falls through to the warm path —
    // there is nothing left to redo.)
    if (shards.is_some() || jobs.is_some() || resume)
        && n >= 2
        && atlas.as_ref().is_none_or(|a| a.coverage(n).is_none())
    {
        let ranges =
            match shards.as_deref() {
                None | Some("auto") => None,
                Some(v) => Some(v.parse().unwrap_or_else(|_| {
                    panic!("--shards wants `auto` or a range count, got {v:?}")
                })),
            };
        return run_orchestrated_cli(
            n,
            threads,
            ranges,
            atlas,
            report_json,
            resume.then_some(dropped_tail),
        );
    }
    eprintln!(
        "classifying all connected topologies on n={n} vertices ({path} enumeration{})...",
        match &atlas {
            Some(a) => format!(", atlas-backed: {} stored records", a.len()),
            None => String::new(),
        }
    );
    let started = std::time::Instant::now();
    let (windows, stats) = WindowSweep::run_with_stats(n, threads, streaming, atlas.as_ref());
    let elapsed_ms = started.elapsed().as_millis() as u64;
    bnf_obs::heartbeat::finish();
    // The report is rendered *from the manifest* (bnf-obs), so the
    // stderr lines and the --report-json numbers cannot disagree.
    let mut manifest = build_sweep_manifest(n, path, elapsed_ms, &windows, stats.as_ref());
    eprintln!("{}", bnf_obs::render_classified_line(&manifest));
    if let Some(line) = bnf_obs::render_enumeration_line(&manifest) {
        eprintln!("{line}");
    }
    if let Some(atlas) = atlas.as_mut() {
        let appended = atlas
            .append_records(&windows.records)
            .unwrap_or_else(|e| panic!("atlas append failed: {e}"));
        // This was a full sweep of order n: declare coverage so the
        // next run replays the catalogue without enumerating at all.
        atlas
            .mark_complete(n, windows.records.len())
            .unwrap_or_else(|e| panic!("atlas coverage update failed: {e}"));
        manifest.set_counter("atlas_hits", (windows.records.len() - appended) as u64);
        manifest.set_counter("atlas_appended", appended as u64);
        push_atlas_density_metric(&mut manifest, atlas, n);
        eprintln!(
            "atlas {}: {} hits, {appended} new records appended ({} stored)",
            atlas.path().display(),
            windows.records.len() - appended,
            atlas.len()
        );
    }
    manifest.peak_rss_kb = peak_rss_kb();
    eprintln!("{}", bnf_obs::format_peak_rss(manifest.peak_rss_kb, path));
    finish_manifest(manifest, report_json);
    windows
}

/// The run-manifest skeleton every sweep CLI path shares: identity
/// (tool, order, path, exact argv), outcome (emitted, wall-clock) and —
/// when the run enumerated — the exact [`bnf_stream::StreamStats`]
/// level sizes and pruning counters, plus the gated
/// `manifest/candidates_per_survivor/{n}` metric.
///
/// Counters are seeded from `stats` (deterministic, exactly what the
/// run computed), never from the global recorder — recorder values are
/// [`bnf_obs::RunManifest::absorb`]ed separately at write time so
/// auxiliary telemetry cannot perturb the gated numbers.
pub fn build_sweep_manifest(
    n: usize,
    path: &str,
    elapsed_ms: u64,
    windows: &WindowSweep,
    stats: Option<&bnf_stream::StreamStats>,
) -> bnf_obs::RunManifest {
    let tool = std::env::args()
        .next()
        .as_deref()
        .map(|arg0| {
            std::path::Path::new(arg0)
                .file_stem()
                .map_or_else(|| arg0.to_owned(), |s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "sweep".to_owned());
    let mut manifest = bnf_obs::RunManifest::new(&tool, n as u32, path);
    manifest.emitted = windows.records.len() as u64;
    manifest.elapsed_ms = elapsed_ms;
    manifest.peak_rss_kb = peak_rss_kb();
    if let Some(stats) = stats {
        manifest.level_sizes = stats.level_sizes.clone();
        for (name, value) in stats.prune.named() {
            manifest.set_counter(name, value);
        }
        manifest.push_metric(
            &format!("manifest/candidates_per_survivor/{n}"),
            stats.prune.candidates_per_survivor(),
        );
    }
    manifest
}

/// Pushes `manifest/atlas_bytes_per_record/{n}` — the gated on-disk
/// density of the store the sweep wrote — skipped for an empty atlas
/// (no records to divide by). The v4 columnar format exists to push
/// this number down; the gate keeps it from regressing.
fn push_atlas_density_metric(
    manifest: &mut bnf_obs::RunManifest,
    atlas: &bnf_atlas::ClassificationAtlas,
    n: usize,
) {
    let Ok(meta) = std::fs::metadata(atlas.path()) else {
        return;
    };
    if atlas.is_empty() {
        return;
    }
    manifest.push_metric(
        &format!("manifest/atlas_bytes_per_record/{n}"),
        meta.len() as f64 / atlas.len() as f64,
    );
}

/// Folds the global recorder's spans / counters / histograms into the
/// manifest and writes it to `report_json` when given. Draining the
/// recorder even when no report was requested keeps consecutive runs in
/// one process (tests, warm replays after a cold run) from leaking
/// telemetry into each other.
fn finish_manifest(mut manifest: bnf_obs::RunManifest, report_json: Option<String>) {
    manifest.absorb(bnf_obs::Recorder::global().take());
    if let Some(path) = report_json {
        std::fs::write(&path, manifest.to_json())
            .unwrap_or_else(|e| panic!("cannot write run manifest to {path}: {e}"));
        eprintln!("run manifest written to {path}");
    }
}

/// The `--shards auto|R` / `--resume` body: one in-process orchestrated
/// sweep — frontier built once, ranges work-stolen across `threads`
/// workers, each completed range streamed into the `--atlas` store
/// (when given) with its [`bnf_atlas::ShardMeta`] provenance, coverage
/// declared when the partition closes.
///
/// `resume_dropped_tail` is `Some(bytes)` when `--resume` was passed
/// (`bytes` = torn tail dropped by recovery, 0 on a clean store): the
/// partition of the interrupted run is reconstructed from the store's
/// shard metadata ([`resume_plan_from_metas`]) and only its missing
/// ranges execute; once coverage closes across runs, the figure output
/// is replayed from the store, never taken from the partial merge.
fn run_orchestrated_cli(
    n: usize,
    threads: usize,
    ranges: Option<usize>,
    mut atlas: Option<bnf_atlas::ClassificationAtlas>,
    report_json: Option<String>,
    resume_dropped_tail: Option<u64>,
) -> WindowSweep {
    // Two handles on the same store: the orchestrator's workers read
    // classifications through a second read-only handle while the
    // writer callback appends through the original — `open` reads the
    // file fully up front, so the snapshot is stable.
    let lookup = match &atlas {
        Some(a) if !a.is_empty() => Some(
            bnf_atlas::ClassificationAtlas::open(a.path())
                .unwrap_or_else(|e| panic!("cannot reopen atlas for lookups: {e}")),
        ),
        _ => None,
    };
    let plan = match (resume_dropped_tail, &atlas) {
        (Some(_), Some(a)) => resume_plan_from_metas(n, a.shard_metas()),
        _ => None,
    };
    let run_id = orchestrator_run_id();
    match &plan {
        Some((plan, prior_runs)) => eprintln!(
            "resuming the n={n} sweep: {}/{} range(s) durably complete from {prior_runs} \
             prior run(s); {threads} worker thread(s) redoing the remaining {}...",
            plan.completed.len(),
            plan.ranges,
            plan.ranges - plan.completed.len(),
        ),
        None => eprintln!(
            "orchestrating the n={n} sweep in-process: {threads} worker thread(s) stealing \
             {} frontier ranges{}...",
            ranges.unwrap_or_else(|| bnf_engine::auto_range_count(threads)),
            match &lookup {
                Some(a) => format!(", atlas-backed: {} stored records", a.len()),
                None => String::new(),
            }
        ),
    }
    let started = std::time::Instant::now();
    let mut appended_total = 0usize;
    let mut hits_total = 0usize;
    let mut provenance: Vec<bnf_obs::ShardProvenance> = Vec::new();
    let mut on_segment = |seg: bnf_engine::RangeSegment<'_, bnf_core::WindowRecord>| {
        provenance.push(bnf_obs::ShardProvenance {
            order: n as u32,
            index: seg.index as u32,
            count: seg.ranges as u32,
            parent_lo: seg.parent_lo,
            parent_hi: seg.parent_hi,
            emitted: seg.emitted,
            elapsed_ms: seg.elapsed_ms,
            peak_rss_kb: peak_rss_kb(),
            orchestrator_run: Some(run_id),
        });
        if let Some(atlas) = atlas.as_mut() {
            let appended = atlas
                .append_records(seg.records)
                .unwrap_or_else(|e| panic!("atlas append failed: {e}"));
            appended_total += appended;
            hits_total += seg.records.len() - appended;
            let meta = bnf_atlas::ShardMeta {
                order: n as u16,
                shard_index: seg.index as u32,
                shard_count: seg.ranges as u32,
                frontier_len: seg.frontier_len,
                parent_lo: seg.parent_lo,
                parent_hi: seg.parent_hi,
                emitted: seg.emitted,
                elapsed_ms: seg.elapsed_ms,
                peak_rss_kb: peak_rss_kb(),
                orchestrator_run: Some(run_id),
                frontier_prune: seg.frontier_prune,
                final_prune: seg.final_prune,
            };
            atlas
                .append_shard_meta(&meta)
                .unwrap_or_else(|e| panic!("atlas metadata append failed: {e}"));
            // The crash-safety kill point of the whole sweep stack:
            // this range is now durably committed (records + meta
            // fsynced), so a fault armed here (BNF_FAULT, see
            // bnf-faults) crashes with exactly N ranges recoverable.
            bnf_faults::trip_with_file("range_commit", atlas.path());
        }
    };
    let (mut windows, stats) = match &plan {
        Some((plan, _)) => WindowSweep::run_orchestrated_resumed(
            n,
            threads,
            plan,
            lookup.as_ref(),
            &mut on_segment,
        ),
        None => WindowSweep::run_orchestrated(n, threads, ranges, lookup.as_ref(), &mut on_segment),
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;
    bnf_obs::heartbeat::finish();
    let mut manifest =
        build_sweep_manifest(n, "orchestrated", elapsed_ms, &windows, Some(&stats.stats));
    manifest.set_counter("ranges", stats.ranges as u64);
    manifest.set_counter("threads", stats.threads as u64);
    manifest.set_counter("frontier_len", stats.frontier_len);
    // Steal-balance quality: the heaviest range's share of the emitted
    // total. 1/ranges is perfect balance; near 1.0 means one range
    // dominated the run and the oversplit is too coarse.
    if manifest.emitted > 0 {
        let heaviest = provenance.iter().map(|s| s.emitted).max().unwrap_or(0);
        manifest.push_metric(
            &format!("manifest/heaviest_range_share/{n}"),
            heaviest as f64 / manifest.emitted as f64,
        );
    }
    if let Some(dropped_tail) = resume_dropped_tail {
        let recovered = plan.as_ref().map_or(0, |(p, _)| p.completed.len());
        let prior_runs = plan.as_ref().map_or(0, |(_, runs)| *runs);
        let redone = (stats.ranges - recovered) as u64;
        manifest.set_counter("resume_recovered_ranges", recovered as u64);
        manifest.set_counter("resume_redone_ranges", redone);
        manifest.set_counter("resume_prior_runs", prior_runs);
        manifest.set_counter("resume_dropped_tail_bytes", dropped_tail);
        // A resumed manifest carries exactly one gate-facing metric:
        // the standard ones are computed from executed-ranges-only
        // stats (not comparable to a cold run), and bench_gate refuses
        // duplicate metric ids across the estimate files of one gate
        // invocation.
        manifest.metrics.clear();
        manifest.push_metric(
            &format!("manifest/ranges_redone_on_resume/{n}"),
            redone as f64,
        );
        eprintln!(
            "resumed sweep: recovered {recovered}/{} completed range(s) from {prior_runs} \
             prior run(s), redoing {redone}; torn tail: {dropped_tail} byte(s) dropped",
            stats.ranges,
        );
    }
    manifest.shards = provenance;
    eprintln!("{}", bnf_obs::render_classified_line(&manifest));
    if let Some(line) = bnf_obs::render_enumeration_line(&manifest) {
        eprintln!("{line}");
    }
    if let Some(atlas) = atlas.as_mut() {
        let coverage = atlas
            .declare_sharded_coverage()
            .unwrap_or_else(|e| panic!("atlas coverage declaration failed: {e}"));
        for (order, outcome) in coverage {
            if order != n {
                continue;
            }
            match outcome {
                bnf_atlas::ShardCoverage::Declared(count)
                | bnf_atlas::ShardCoverage::AlreadyDeclared(count) => eprintln!(
                    "orchestrated sweep: coverage complete for order {order} ({count} topologies)"
                ),
                other => eprintln!(
                    "orchestrated sweep: coverage NOT declared for order {order} — {other:?}"
                ),
            }
        }
        if plan.is_some() {
            // The resumed run's merge holds only the redone ranges —
            // figure output always replays from the now-complete store,
            // byte-identical to what an uninterrupted run returns.
            windows.records = atlas.complete_sweep(n).unwrap_or_else(|| {
                panic!("resumed n={n} sweep did not close coverage — store still partial")
            });
        }
        manifest.set_counter("atlas_hits", hits_total as u64);
        manifest.set_counter("atlas_appended", appended_total as u64);
        if resume_dropped_tail.is_none() {
            // A resumed manifest keeps exactly one gate-facing metric
            // (see above), so the density metric is cold-run only.
            push_atlas_density_metric(&mut manifest, atlas, n);
        }
        eprintln!(
            "atlas {}: {hits_total} hits, {appended_total} new records appended ({} stored)",
            atlas.path().display(),
            atlas.len()
        );
    }
    // One process, one VmHWM: the honest memory number, versus the
    // max + sum ambiguity of a 16-process shard fleet.
    manifest.peak_rss_kb = peak_rss_kb();
    eprintln!(
        "{}",
        bnf_obs::format_peak_rss(manifest.peak_rss_kb, "orchestrated")
    );
    finish_manifest(manifest, report_json);
    windows
}

/// A per-invocation tag linking the `ShardMeta` frames of one
/// orchestrated run, so provenance readers can tell in-process ranges
/// (one process, one RSS peak) from a fleet of shard processes. Unique
/// per run on one machine; collisions across machines merge two runs'
/// RSS groups, which only ever *under*-reports the process count.
fn orchestrator_run_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()) ^ d.as_secs())
        .unwrap_or(0);
    (u64::from(std::process::id()) << 32) ^ nanos
}

/// Reconstructs an interrupted orchestrated run's partition from the
/// [`bnf_atlas::ShardMeta`] frames its store already holds: metadata
/// for order `n` is grouped by `(shard_count, frontier_len)` — the pair
/// that fully determines the range boundaries — and the group with the
/// most completed ranges wins (a store holds one live partition per
/// order in practice; a stray experiment's stale metas must not hijack
/// the resume). Returns the [`bnf_engine::ResumePlan`] plus the number
/// of distinct prior runs that contributed, or `None` when the store
/// has no usable metadata (cold start: resume degenerates to a full
/// orchestrated run).
///
/// The plan's `frontier_len` is re-asserted against the rebuilt
/// frontier inside the engine before any range executes, so metadata
/// from an incompatible build fails loudly rather than skipping the
/// wrong parents.
fn resume_plan_from_metas(
    n: usize,
    metas: &[bnf_atlas::ShardMeta],
) -> Option<(bnf_engine::ResumePlan, u64)> {
    use std::collections::{BTreeMap, BTreeSet};
    type Group = (BTreeSet<usize>, BTreeSet<Option<u64>>);
    let mut groups: BTreeMap<(u32, u64), Group> = BTreeMap::new();
    for meta in metas {
        if usize::from(meta.order) != n || meta.shard_index >= meta.shard_count {
            continue;
        }
        let (completed, runs) = groups
            .entry((meta.shard_count, meta.frontier_len))
            .or_default();
        completed.insert(meta.shard_index as usize);
        runs.insert(meta.orchestrator_run);
    }
    let ((shard_count, frontier_len), (completed, runs)) = groups
        .into_iter()
        .max_by_key(|(key, (completed, _))| (completed.len(), key.0))?;
    Some((
        bnf_engine::ResumePlan {
            ranges: shard_count as usize,
            completed: completed.into_iter().collect(),
            frontier_len,
        },
        runs.len() as u64,
    ))
}

/// The `--shard i/m` body: classifies one frontier shard, persists the
/// records and metadata into the segment atlas, reports, and exits the
/// process (0 on success) — partial sweeps never reach the figure
/// renderers.
fn write_shard_segment(
    n: usize,
    threads: usize,
    shard: bnf_stream::ShardSpec,
    atlas: &mut bnf_atlas::ClassificationAtlas,
    report_json: Option<String>,
) -> ! {
    eprintln!(
        "classifying shard {}/{} of the n={n} parent frontier into segment {} \
         ({} stored records)...",
        shard.index,
        shard.count,
        atlas.path().display(),
        atlas.len(),
    );
    let started = std::time::Instant::now();
    let (windows, run) = WindowSweep::run_shard(n, threads, shard, Some(&*atlas));
    let elapsed_ms = started.elapsed().as_millis() as u64;
    let appended = atlas
        .append_records(&windows.records)
        .unwrap_or_else(|e| panic!("segment append failed: {e}"));
    let meta = bnf_atlas::ShardMeta {
        order: n as u16,
        shard_index: shard.index as u32,
        shard_count: shard.count as u32,
        frontier_len: run.frontier_len,
        parent_lo: run.parent_lo,
        parent_hi: run.parent_hi,
        emitted: run.stats.emitted(),
        elapsed_ms,
        peak_rss_kb: peak_rss_kb(),
        orchestrator_run: None,
        frontier_prune: run.frontier_prune(),
        final_prune: run.final_prune,
    };
    atlas
        .append_shard_meta(&meta)
        .unwrap_or_else(|e| panic!("segment metadata append failed: {e}"));
    bnf_obs::heartbeat::finish();
    eprintln!(
        "shard {}/{}: parents {}..{} of {}, {} records in {elapsed_ms} ms \
         ({appended} newly classified, {} atlas hits)",
        shard.index,
        shard.count,
        run.parent_lo,
        run.parent_hi,
        run.frontier_len,
        windows.records.len(),
        windows.records.len() - appended,
    );
    // The shard path has no whole-run StreamStats — its counters cover
    // the final level only — so the manifest is seeded by hand and the
    // shard-flavoured enumeration line rendered from it.
    let mut manifest = build_sweep_manifest(n, "shard", elapsed_ms, &windows, None);
    for (name, value) in run.final_prune.named() {
        manifest.set_counter(name, value);
    }
    manifest.set_counter("atlas_hits", (windows.records.len() - appended) as u64);
    manifest.set_counter("atlas_appended", appended as u64);
    manifest.push_metric(
        &format!("manifest/candidates_per_survivor/{n}"),
        run.final_prune.candidates_per_survivor(),
    );
    manifest.shards = vec![bnf_obs::ShardProvenance {
        order: n as u32,
        index: shard.index as u32,
        count: shard.count as u32,
        parent_lo: run.parent_lo,
        parent_hi: run.parent_hi,
        emitted: run.stats.emitted(),
        elapsed_ms,
        peak_rss_kb: meta.peak_rss_kb,
        orchestrator_run: None,
    }];
    if let Some(line) = bnf_obs::render_enumeration_line(&manifest) {
        eprintln!("{line}");
    }
    manifest.peak_rss_kb = peak_rss_kb();
    eprintln!(
        "{}",
        bnf_obs::format_peak_rss(manifest.peak_rss_kb, "shard")
    );
    finish_manifest(manifest, report_json);
    eprintln!(
        "segment written; fold segments with `shard_merge --out merged.bnfatlas <segments>` \
         and re-run with --atlas merged.bnfatlas"
    );
    std::process::exit(0);
}

/// Prints this process's peak RSS to stderr; `path` labels which
/// enumeration path produced it. Where the value is unmeasurable
/// (non-Linux: [`peak_rss_kb`] is `None`) the line says `unavailable`
/// explicitly — silently omitting it made those reports look truncated.
pub fn report_peak_rss(path: &str) {
    eprintln!("{}", bnf_obs::format_peak_rss(peak_rss_kb(), path));
}

/// Parses `--name value` from a raw argument list (first occurrence).
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_sweep_n_parsing() {
        assert_eq!(max_sweep_n_from(None), DEFAULT_MAX_SWEEP_N);
        assert_eq!(max_sweep_n_from(Some("9".into())), 9);
        assert_eq!(max_sweep_n_from(Some(" 10 ".into())), 10);
        // Clamped to the enumeration bound.
        assert_eq!(max_sweep_n_from(Some("12".into())), 10);
        // Garbage falls back to the default.
        assert_eq!(max_sweep_n_from(Some("many".into())), DEFAULT_MAX_SWEEP_N);
        assert_eq!(max_sweep_n_from(Some(String::new())), DEFAULT_MAX_SWEEP_N);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--n", "7", "--csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--n"), Some("7".into()));
        assert_eq!(arg_value(&args, "--threads"), None);
        assert!(arg_flag(&args, "--csv"));
        assert!(!arg_flag(&args, "--json"));
    }
}
