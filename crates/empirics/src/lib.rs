//! Empirical harness reproducing the evaluation of Corbo & Parkes
//! (PODC 2005).
//!
//! Each figure of the paper has a module and a binary:
//!
//! | Paper item | Module | Binary |
//! |---|---|---|
//! | Figure 1 (stable-graph gallery) | [`gallery`] | `fig1_gallery` |
//! | Figure 2 (average PoA vs link cost) | [`sweep`] | `fig2_avg_poa` |
//! | Figure 3 (average #links vs link cost) | [`sweep`] | `fig3_avg_links` |
//! | Propositions 3–4 (PoA bounds) | [`bounds`] | `poa_bounds` |
//! | Lemma 6 (cycle windows) | [`cycles`] | `lemma6_cycles` |
//! | Lemmas 4–5 (efficiency) | [`efficiency`] | `efficiency_scan` |
//!
//! Run any of them with `cargo run --release -p bnf-empirics --bin <name>`.
//!
//! Every module is a thin job definition over `bnf-engine`'s
//! [`AnalysisEngine`](bnf_engine::AnalysisEngine): the engine owns
//! enumeration, work-stealing execution and per-worker scratch reuse;
//! the modules own only what to compute per item and how to aggregate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod cycles;
pub mod efficiency;
pub mod gallery;
pub mod sweep;
pub mod tables;

pub use bounds::{prop3_series, prop4_rows, window_top_poa, LowerBoundRow, UpperBoundRow};
// Re-exported so the executor keeps its pre-engine `empirics` path; the
// implementation lives in `bnf-engine` now.
pub use bnf_engine::{default_threads, parallel_map};
pub use cycles::{lemma6_rows, CycleRow};
pub use efficiency::{
    efficiency_rows, EfficiencyJob, EfficiencyRecord, EfficiencyRow, EfficiencyScan, MinimizerShape,
};
pub use gallery::{extended_gallery, figure1_gallery, GalleryEntry};
pub use sweep::{
    stable_catalog, EquilibriumStats, GraphRecord, SweepConfig, SweepJob, SweepResult,
};
pub use tables::{fmt_stat, render_csv, render_table};

/// Parses `--name value` from a raw argument list (first occurrence).
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--n", "7", "--csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--n"), Some("7".into()));
        assert_eq!(arg_value(&args, "--threads"), None);
        assert!(arg_flag(&args, "--csv"));
        assert!(!arg_flag(&args, "--json"));
    }
}
