//! Proposition 3 and Proposition 4 experiments.
//!
//! Prop 3 (lower bound): regular graphs whose order sits at (a constant
//! factor of) the Moore bound are pairwise stable for some α and have
//! price of anarchy Ω(log α). We reproduce the series on the concrete
//! Moore graphs and cages the paper names, evaluating the PoA at the top
//! of each exact stability window and comparing against `log2 α`.
//!
//! Prop 4 (upper bound): the worst-case PoA at link cost α is
//! `O(min(√α, n/√α))`. We reproduce it empirically as a max over the
//! exhaustively enumerated stable set per α, with the envelope column.

use bnf_core::{prop4_envelope, stability_window, Threshold};
use bnf_games::{price_of_anarchy, GameKind, Ratio};
use bnf_graph::Graph;

use crate::gallery::{extended_gallery, figure1_gallery};
use crate::sweep::SweepResult;

/// One row of the Proposition 3 lower-bound series.
#[derive(Debug, Clone)]
pub struct LowerBoundRow {
    /// Graph name.
    pub name: String,
    /// Order.
    pub n: usize,
    /// Degree (regular graphs only — the Moore-bound setting).
    pub degree: usize,
    /// Girth.
    pub girth: u32,
    /// Diameter.
    pub diameter: u32,
    /// Top of the exact stability window (the α at which the Ω(log α)
    /// bound is read off).
    pub alpha_top: Ratio,
    /// PoA at `alpha_top` in the BCG.
    pub poa: f64,
    /// `log2(alpha_top)` — the lower-bound yardstick.
    pub log2_alpha: f64,
}

/// Builds the Prop 3 series over the regular gallery graphs with a finite
/// stability window (Moore graphs, cages, hypercubes, a long cycle).
pub fn prop3_series() -> Vec<LowerBoundRow> {
    // The expensive part — certifying the windows — already runs on the
    // engine inside the gallery constructors; the residual per-entry
    // work is one PoA evaluation, so a sequential fold is the right
    // altitude here.
    let mut rows = Vec::new();
    for e in figure1_gallery().into_iter().chain(extended_gallery()) {
        let (Some(degree), Some(window)) = (e.degree, e.window) else {
            continue;
        };
        if window.is_empty() {
            continue;
        }
        let Threshold::Finite(alpha_top) = window.upper else {
            continue; // trees: no finite top
        };
        let poa = price_of_anarchy(&e.graph, GameKind::Bilateral, alpha_top);
        rows.push(LowerBoundRow {
            name: e.name.to_string(),
            n: e.graph.order(),
            degree,
            girth: e.girth.unwrap_or(0),
            diameter: e.diameter.unwrap_or(0),
            alpha_top,
            poa,
            log2_alpha: alpha_top.to_f64().log2(),
        });
    }
    rows.sort_by_key(|a| a.alpha_top);
    rows
}

/// One row of the Proposition 4 empirical upper-bound table.
#[derive(Debug, Clone, Copy)]
pub struct UpperBoundRow {
    /// The link cost.
    pub alpha: Ratio,
    /// Worst-case PoA over the enumerated BCG-stable set.
    pub max_poa: f64,
    /// The `min(√α, n/√α)` envelope of Proposition 4.
    pub envelope: f64,
}

/// Reads the worst-case stable PoA per α out of a sweep and pairs it with
/// the Prop 4 envelope.
pub fn prop4_rows(sweep: &SweepResult) -> Vec<UpperBoundRow> {
    sweep
        .stats(GameKind::Bilateral)
        .into_iter()
        .map(|s| UpperBoundRow {
            alpha: s.alpha,
            max_poa: s.max_poa,
            envelope: prop4_envelope(sweep.n, s.alpha),
        })
        .collect()
}

/// Exact stability verdict for an arbitrary graph at the top of its
/// window — convenience for ad-hoc lower-bound exhibits.
pub fn window_top_poa(g: &Graph) -> Option<(Ratio, f64)> {
    let w = stability_window(g)?;
    if w.is_empty() {
        return None;
    }
    let Threshold::Finite(top) = w.upper else {
        return None;
    };
    Some((top, price_of_anarchy(g, GameKind::Bilateral, top)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepConfig;

    #[test]
    fn prop3_series_is_nonempty_and_monotone_in_alpha() {
        let rows = prop3_series();
        assert!(
            rows.len() >= 6,
            "expected the gallery regulars, got {}",
            rows.len()
        );
        // The PoA of the series should grow with log α overall: compare
        // the first and last rows.
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(last.alpha_top > first.alpha_top);
        assert!(
            last.poa > first.poa,
            "PoA should grow along the Moore series: {} -> {}",
            first.poa,
            last.poa
        );
    }

    #[test]
    fn petersen_and_hoffman_singleton_in_series() {
        let rows = prop3_series();
        assert!(rows.iter().any(|r| r.name == "Petersen"));
        assert!(rows.iter().any(|r| r.name == "Hoffman-Singleton"));
        for r in &rows {
            assert!(r.poa >= 1.0, "{}: PoA >= 1", r.name);
        }
    }

    #[test]
    fn prop4_envelope_dominates_at_small_n() {
        let config = SweepConfig {
            n: 6,
            alphas: vec![
                Ratio::new(1, 2),
                Ratio::from(2),
                Ratio::from(4),
                Ratio::from(9),
                Ratio::from(16),
            ],
            threads: 2,
        };
        let sweep = SweepResult::run(&config);
        for row in prop4_rows(&sweep) {
            // Prop 4 is asymptotic (constant factor); at n = 6 a factor
            // of 3 comfortably covers it and catches regressions.
            assert!(
                row.max_poa <= 3.0 * row.envelope.max(1.0),
                "alpha={}: max_poa={} envelope={}",
                row.alpha,
                row.max_poa,
                row.envelope
            );
        }
    }

    #[test]
    fn window_top_poa_on_cycle() {
        let c8 = bnf_atlas::cycle(8);
        let (top, poa) = window_top_poa(&c8).unwrap();
        assert_eq!(top, Ratio::from(12)); // n(n-2)/4
        assert!(poa > 1.0);
    }
}
