//! Plain-text and CSV table rendering for the figure binaries.

use std::fmt::Write as _;

/// Renders an aligned monospace table.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    // Alignment cap: `{:>w$}` panics ("Formatting argument out of
    // range") for widths beyond u16::MAX, and a pathological cell (the
    // n = 9 efficiency scan's minimizer list) should overflow its
    // column rather than blow up the whole table.
    const MAX_COL_WIDTH: usize = 512;
    let cols = headers.len();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header width");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len()).min(MAX_COL_WIDTH);
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (w, h) in widths.iter().zip(headers) {
        let _ = write!(line, "{h:>w$}  ");
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (w, cell) in widths.iter().zip(row) {
            let _ = write!(line, "{cell:>w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Renders comma-separated values (no quoting — callers pass numeric
/// cells and simple identifiers only).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats an `f64` statistic compactly (4 significant decimals, `-` for
/// NaN).
pub fn fmt_stat(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["alpha", "poa"],
            &[
                vec!["1/2".into(), "1.0000".into()],
                vec!["16".into(), "1.2345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("alpha"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].ends_with("1.0000"));
    }

    #[test]
    fn csv_rendering() {
        let c = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn stat_formatting() {
        assert_eq!(fmt_stat(f64::NAN), "-");
        assert_eq!(fmt_stat(f64::INFINITY), "inf");
        assert_eq!(fmt_stat(1.23456), "1.2346");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
