//! A small scoped worker pool for embarrassingly parallel sweeps.
//!
//! The Figure 2/3 sweeps classify every connected topology independently,
//! so a work-stealing index counter over scoped threads is all the
//! machinery needed.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every item on `threads` worker threads, preserving
/// input order in the output.
///
/// # Panics
///
/// Propagates panics from `f` (the scope join panics).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, Ordering::SeqCst);
                if idx >= items.len() {
                    break;
                }
                let r = f(&items[idx]);
                results.lock().push((idx, r));
            });
        }
    })
    .expect("worker thread panicked");
    let mut pairs = results.into_inner();
    pairs.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// A reasonable default worker count for this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u8> = Vec::new();
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5u32];
        assert_eq!(parallel_map(&items, 64, |&x| x * x), vec![25]);
    }
}
