//! Lemma 6: exact stability windows of cycles versus the paper's printed
//! formulas (the revised paper fixed several errors; the odd-cycle α_max
//! in the Lemma 6 sketch is still off by the exact computation — both are
//! reported so EXPERIMENTS.md can record paper-vs-measured).

use bnf_core::{cycle_stability_window, lemma6_paper_window, Threshold};
use bnf_engine::AnalysisEngine;
use bnf_games::Ratio;

/// One row of the Lemma 6 comparison table.
#[derive(Debug, Clone)]
pub struct CycleRow {
    /// Cycle length.
    pub n: usize,
    /// Exact lower end of the stability window (value, inclusive?).
    pub exact_min: (Ratio, bool),
    /// Exact upper end.
    pub exact_max: Ratio,
    /// The paper's printed α_min.
    pub paper_min: Ratio,
    /// The paper's printed α_max.
    pub paper_max: Ratio,
    /// Whether the printed α_max equals the exact one.
    pub max_matches: bool,
}

/// Builds the comparison for `C_n`, `n` in `range`.
///
/// # Panics
///
/// Panics if the range contains `n < 4`.
pub fn lemma6_rows(range: impl IntoIterator<Item = usize>) -> Vec<CycleRow> {
    let lengths: Vec<usize> = range.into_iter().collect();
    // Window cost grows ~quadratically in the cycle length, so the
    // engine pays off as soon as callers pass large --max ranges; at the
    // default range the scope overhead is a few spawns.
    let engine = AnalysisEngine::with_default_threads();
    engine.map(&lengths, |&n, _scratch| {
        let exact = cycle_stability_window(n);
        let (paper_min, paper_max) = lemma6_paper_window(n);
        let exact_max = match exact.upper {
            Threshold::Finite(t) => t,
            Threshold::Infinite => unreachable!("cycles have finite drop deltas"),
        };
        CycleRow {
            n,
            exact_min: (exact.lower.value, exact.lower.inclusive),
            exact_max,
            paper_min,
            paper_max,
            max_matches: paper_max == exact_max,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_cycles_match_paper_alpha_max() {
        for row in lemma6_rows([6, 8, 10, 12]) {
            assert!(
                row.max_matches,
                "C{}: paper={} exact={}",
                row.n, row.paper_max, row.exact_max
            );
        }
    }

    #[test]
    fn odd_cycles_document_discrepancy() {
        for row in lemma6_rows([5, 7, 9, 11]) {
            assert!(
                !row.max_matches,
                "C{}: the printed odd formula differs",
                row.n
            );
            let ni = row.n as i64;
            assert_eq!(row.exact_max, Ratio::new((ni - 1) * (ni - 1), 4));
        }
    }

    #[test]
    fn windows_grow_quadratically() {
        let rows = lemma6_rows([6, 10, 14]);
        assert!(rows[0].exact_max < rows[1].exact_max);
        assert!(rows[1].exact_max < rows[2].exact_max);
        // α_max = n(n-2)/4 exactly for even n.
        assert_eq!(rows[2].exact_max, Ratio::from(14 * 12 / 4));
    }
}
