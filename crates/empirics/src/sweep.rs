//! The Section 5 empirical study: classify every connected topology on
//! `n` vertices as BCG-pairwise-stable / UCG-Nash-supportable across a
//! grid of link costs, then aggregate the statistics behind Figures 2
//! (average price of anarchy) and 3 (average number of links).
//!
//! The paper ran this at n = 10 (11 716 571 connected topologies); the
//! default here is n = 7 (853) with n = 8 (11 117) a command-line flag —
//! see DESIGN.md §4 for the substitution rationale. The pipeline is
//! identical: exhaustive non-isomorphic enumeration, exact equilibrium
//! tests, per-α aggregation.
//!
//! Since PR 3 the sweep is **windows-first**: classification emits one
//! α-independent [`WindowRecord`] per topology ([`WindowSweep`],
//! optionally backed by a persistent
//! [`ClassificationAtlas`]), and any α
//! grid is evaluated afterwards as a pure post-pass
//! ([`crate::grid::evaluate`]) — so finer Figure 2/3 axes cost nothing
//! beyond the membership tests. The original per-α job survives as
//! [`SweepJob`] / [`SweepResult::run_per_alpha`], the reference
//! implementation the equivalence tests compare against bit for bit.

use bnf_atlas::ClassificationAtlas;
use bnf_core::{
    stability_window_with, transfer_stability_window_with, ucg_necessary_window_with, UcgAnalyzer,
    WindowRecord,
};
use bnf_engine::{
    default_threads, Analysis, AnalysisEngine, OrchestratorStats, RangeSegment, WorkerScratch,
};
use bnf_enumerate::connected_graphs;
use bnf_games::{poa_of_summary, CostSummary, GameKind, Ratio};
use bnf_graph::Graph;

/// Configuration of an empirical sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of players (vertices).
    pub n: usize,
    /// Link-cost grid (exact rationals; the paper plots a log-α axis).
    pub alphas: Vec<Ratio>,
    /// Worker threads.
    pub threads: usize,
}

impl SweepConfig {
    /// The standard grid used by the figure binaries: log-spaced link
    /// costs from 1/4 to 64.
    pub fn standard(n: usize) -> SweepConfig {
        let alphas = [
            (1, 4),
            (1, 2),
            (3, 4),
            (1, 1),
            (3, 2),
            (2, 1),
            (3, 1),
            (4, 1),
            (6, 1),
            (8, 1),
            (12, 1),
            (16, 1),
            (24, 1),
            (32, 1),
            (48, 1),
            (64, 1),
        ]
        .into_iter()
        .map(|(p, q)| Ratio::new(p, q))
        .collect();
        SweepConfig {
            n,
            alphas,
            threads: default_threads(),
        }
    }
}

/// Per-topology classification across the α grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphRecord {
    /// Number of edges `|A|`.
    pub edges: u64,
    /// Exact ordered-pair distance total `Σ_{i,j} d(i,j)`.
    pub total_distance: u64,
    /// Pairwise stable in the BCG at `alphas[k]`?
    pub bcg_stable: Vec<bool>,
    /// Nash-supportable in the UCG at `alphas[k]`?
    pub ucg_nash: Vec<bool>,
    /// Pairwise stable **with transfers** at `alphas[k]`? (The paper's
    /// future-work extension; see `bnf_core::is_transfer_stable`.)
    pub transfer_stable: Vec<bool>,
}

/// The classified catalogue of all connected topologies on `n` vertices.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Number of players.
    pub n: usize,
    /// The link-cost grid.
    pub alphas: Vec<Ratio>,
    /// One record per connected non-isomorphic graph.
    pub records: Vec<GraphRecord>,
}

/// Per-α aggregate statistics over one game's equilibrium set — the data
/// series of Figures 2 and 3.
#[derive(Debug, Clone, Copy)]
pub struct EquilibriumStats {
    /// The link cost.
    pub alpha: Ratio,
    /// Number of equilibrium topologies at this α.
    pub count: usize,
    /// Mean price of anarchy over the equilibrium set (Figure 2).
    pub mean_poa: f64,
    /// Worst-case price of anarchy over the equilibrium set.
    pub max_poa: f64,
    /// Mean number of links over the equilibrium set (Figure 3).
    pub mean_links: f64,
}

/// The windows-first classification job: emits one α-independent
/// [`WindowRecord`] per topology, consulting a persistent
/// [`ClassificationAtlas`] first when one is attached.
///
/// This is the workhorse [`Analysis`] of the workspace since PR 3: the
/// figure binaries, the efficiency scan, the Proposition 4 table and
/// the conjecture checks all fold its records (through
/// [`crate::grid::evaluate`] for α-grid questions). It must run on the
/// keyed engine paths ([`AnalysisEngine::run_connected_keyed`] /
/// [`AnalysisEngine::run_connected_streaming_keyed`]) so each record
/// carries its canonical graph6 key.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowJob<'a> {
    /// Warm store to consult before classifying; records found here are
    /// returned as-is (classification is a pure function of the key).
    pub atlas: Option<&'a ClassificationAtlas>,
}

impl Analysis for WindowJob<'_> {
    type Output = WindowRecord;

    fn classify(&self, g: &Graph, scratch: &mut WorkerScratch) -> WindowRecord {
        // Unkeyed fallback (ad-hoc graph lists): canonicalize here so
        // the record still carries the canonical key.
        WindowRecord::classify(g, &mut scratch.bfs)
    }

    fn classify_keyed(&self, key: &str, g: &Graph, scratch: &mut WorkerScratch) -> WindowRecord {
        if let Some(hit) = self.atlas.and_then(|a| a.get(key)) {
            return hit.clone();
        }
        WindowRecord::classify_with_key(key.to_owned(), g, &mut scratch.bfs)
    }
}

/// The α-independent classified catalogue: one [`WindowRecord`] per
/// connected topology on `n` vertices, in the engine's deterministic
/// enumeration order. Evaluate any α grid over it with
/// [`crate::grid::evaluate`]; persist it with
/// [`ClassificationAtlas::append_records`].
#[derive(Debug, Clone)]
pub struct WindowSweep {
    /// Number of players.
    pub n: usize,
    /// One record per connected non-isomorphic graph (enumeration
    /// order: edge count, then canonical key).
    pub records: Vec<WindowRecord>,
}

impl WindowSweep {
    /// Enumerates and classifies all connected topologies on `n`
    /// vertices into window records; `streaming` selects the
    /// bounded-channel enumeration (identical records, no materialized
    /// graph list), `atlas` skips classification for already-stored
    /// keys. When the atlas declares *complete* coverage for `n`
    /// ([`ClassificationAtlas::mark_complete`] after a prior full
    /// sweep), the whole catalogue is replayed from the store in engine
    /// order and the enumerator never runs — the warm-run fast path.
    /// The caller owns appending fresh records (and the coverage
    /// marker) back to the atlas.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`crate::max_sweep_n`] (default 8; opt in
    /// via `BNF_MAX_N`).
    pub fn run(
        n: usize,
        threads: usize,
        streaming: bool,
        atlas: Option<&ClassificationAtlas>,
    ) -> WindowSweep {
        Self::run_with_stats(n, threads, streaming, atlas).0
    }

    /// [`WindowSweep::run`] plus the enumeration's
    /// [`StreamStats`](bnf_stream::StreamStats) when the streaming
    /// producer ran (`None` on the materializing, atlas-replay and
    /// trivially-small paths) — the canonical-construction pruning
    /// counters the `--streaming` CLI diagnostics report.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`crate::max_sweep_n`].
    pub fn run_with_stats(
        n: usize,
        threads: usize,
        streaming: bool,
        atlas: Option<&ClassificationAtlas>,
    ) -> (WindowSweep, Option<bnf_stream::StreamStats>) {
        let cap = crate::max_sweep_n();
        assert!(
            n <= cap,
            "sweeps beyond n={cap} need a deliberate opt-in (set BNF_MAX_N)"
        );
        if let Some(records) = atlas.and_then(|a| a.complete_sweep(n)) {
            return (WindowSweep { n, records }, None);
        }
        let engine = AnalysisEngine::new(threads);
        let job = WindowJob { atlas };
        let (records, stats) = if streaming {
            let (records, stats) = engine.run_connected_streaming_keyed_with_stats(n, &job);
            (records, Some(stats))
        } else {
            (engine.run_connected_keyed(n, &job), None)
        };
        (WindowSweep { n, records }, stats)
    }

    /// One shard of a multi-invocation sweep: classifies only the
    /// final-level children of the parent-frontier range owned by
    /// `shard` (`bnf_stream::stream_connected_shard` through the keyed
    /// streaming engine path), returning the shard's records in engine
    /// order *within the shard* plus the producer's
    /// [`ShardStats`](bnf_stream::ShardStats). The caller persists the
    /// records and shard metadata into a segment atlas; `shard_merge`
    /// folds segments into the coverage-complete store.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`crate::max_sweep_n`] or `n <= 1` (no
    /// frontier to shard).
    pub fn run_shard(
        n: usize,
        threads: usize,
        shard: bnf_stream::ShardSpec,
        atlas: Option<&ClassificationAtlas>,
    ) -> (WindowSweep, bnf_stream::ShardStats) {
        let cap = crate::max_sweep_n();
        assert!(
            n <= cap,
            "sweeps beyond n={cap} need a deliberate opt-in (set BNF_MAX_N)"
        );
        let engine = AnalysisEngine::new(threads);
        let job = WindowJob { atlas };
        let (records, stats) = engine.run_connected_streaming_keyed_shard(n, shard, &job);
        (WindowSweep { n, records }, stats)
    }

    /// The one-command in-process replacement for the whole
    /// shard/merge cycle: builds the parent frontier **once**, splits
    /// it into `ranges` work-stolen ranges (`None` → ≈ 16× the thread
    /// count) and classifies them on `threads` workers
    /// ([`AnalysisEngine::run_connected_streaming_keyed_orchestrated`]),
    /// invoking `on_segment` with each completed range — where the CLI
    /// appends records and per-range [`bnf_atlas::ShardMeta`] into one
    /// store — before returning the full catalogue in engine order,
    /// byte-identical to [`WindowSweep::run`], plus the run's
    /// [`OrchestratorStats`] (whose totals equal the unsharded
    /// streaming stats exactly).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`crate::max_sweep_n`] or `n <= 1` (no
    /// frontier to orchestrate); propagates panics from `on_segment`.
    pub fn run_orchestrated<W>(
        n: usize,
        threads: usize,
        ranges: Option<usize>,
        atlas: Option<&ClassificationAtlas>,
        on_segment: W,
    ) -> (WindowSweep, OrchestratorStats)
    where
        W: FnMut(RangeSegment<'_, WindowRecord>),
    {
        let cap = crate::max_sweep_n();
        assert!(
            n <= cap,
            "sweeps beyond n={cap} need a deliberate opt-in (set BNF_MAX_N)"
        );
        let engine = AnalysisEngine::new(threads);
        let job = WindowJob { atlas };
        let (records, stats) =
            engine.run_connected_streaming_keyed_orchestrated(n, ranges, &job, on_segment);
        (WindowSweep { n, records }, stats)
    }

    /// Resumed twin of [`WindowSweep::run_orchestrated`]: executes only
    /// the ranges `plan` lists as missing — completed ranges were
    /// durably persisted by a prior interrupted run and are never
    /// re-streamed. The returned [`WindowSweep`] holds the *executed*
    /// ranges' records only; the caller replays the full catalogue from
    /// the store ([`ClassificationAtlas::complete_sweep`]) once coverage
    /// closes across runs.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`crate::max_sweep_n`], `n <= 1`, or the
    /// plan is incompatible with the rebuilt frontier (wrong
    /// `frontier_len`) — see
    /// [`AnalysisEngine::run_connected_streaming_keyed_orchestrated_resumed`].
    pub fn run_orchestrated_resumed<W>(
        n: usize,
        threads: usize,
        plan: &bnf_engine::ResumePlan,
        atlas: Option<&ClassificationAtlas>,
        on_segment: W,
    ) -> (WindowSweep, OrchestratorStats)
    where
        W: FnMut(RangeSegment<'_, WindowRecord>),
    {
        let cap = crate::max_sweep_n();
        assert!(
            n <= cap,
            "sweeps beyond n={cap} need a deliberate opt-in (set BNF_MAX_N)"
        );
        let engine = AnalysisEngine::new(threads);
        let job = WindowJob { atlas };
        let (records, stats) =
            engine.run_connected_streaming_keyed_orchestrated_resumed(n, plan, &job, on_segment);
        (WindowSweep { n, records }, stats)
    }
}

/// The legacy per-α classification job: equilibrium membership of one
/// topology across a *fixed* α grid, re-deriving window membership per
/// grid point.
///
/// Kept as the independent reference implementation: the windows-first
/// post-pass must reproduce its records bit for bit
/// (`tests/grid_postpass.rs`), which is what certifies the
/// [`WindowRecord`] windows as exact rather than approximations.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The link-cost grid each topology is classified against.
    pub alphas: Vec<Ratio>,
}

impl Analysis for SweepJob {
    type Output = GraphRecord;

    fn classify(&self, g: &Graph, scratch: &mut WorkerScratch) -> GraphRecord {
        let alphas = &self.alphas;
        let edges = g.edge_count() as u64;
        let total_distance = g
            .total_distance_with(&mut scratch.bfs)
            .expect("enumeration yields connected graphs");
        let window = stability_window_with(g, &mut scratch.bfs);
        let bcg_stable = alphas
            .iter()
            .map(|&a| window.is_some_and(|w| w.contains(a)))
            .collect();
        let twindow = transfer_stability_window_with(g, &mut scratch.bfs);
        let transfer_stable = alphas
            .iter()
            .map(|&a| twindow.is_some_and(|w| w.contains(a)))
            .collect();
        // Fast necessary check first (the paper's Section 5 footnote), full
        // orientation solve only where it passes.
        let necessary = ucg_necessary_window_with(g, &mut scratch.bfs);
        let ucg_nash = match necessary {
            None => vec![false; alphas.len()],
            Some(nec) => {
                if alphas.iter().any(|&a| nec.contains(a)) {
                    let solver = UcgAnalyzer::new(g)
                        .expect("enumerated sweep graphs are connected and small");
                    alphas
                        .iter()
                        .map(|&a| nec.contains(a) && solver.is_nash_supportable(a))
                        .collect()
                } else {
                    vec![false; alphas.len()]
                }
            }
        };
        GraphRecord {
            edges,
            total_distance,
            bcg_stable,
            ucg_nash,
            transfer_stable,
        }
    }
}

impl SweepResult {
    /// Enumerates all connected topologies on `config.n` vertices,
    /// classifies each into an α-independent [`WindowRecord`] on the
    /// analysis engine (materializing the graph list first), and
    /// evaluates the config's α grid as a post-pass. Identical records
    /// to the legacy per-α path ([`SweepResult::run_per_alpha`]), bit
    /// for bit.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` exceeds [`crate::max_sweep_n`] (default 8 —
    /// the UCG orientation solve on all 261 080 9-vertex graphs costs
    /// minutes; opt in via `BNF_MAX_N`, and prefer
    /// [`SweepResult::run_streaming`] there).
    pub fn run(config: &SweepConfig) -> SweepResult {
        Self::run_inner(config, false)
    }

    /// Streaming twin of [`SweepResult::run`]: classifies each topology
    /// as the enumeration generates it
    /// ([`AnalysisEngine::run_connected_streaming_keyed`]), so the
    /// graph list is never materialized — the enumeration side holds
    /// one level's frontier (the records still scale with the topology
    /// count; they are the result). The records — and therefore every
    /// aggregate statistic, bit for bit — are identical to the
    /// materializing path's.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` exceeds [`crate::max_sweep_n`].
    pub fn run_streaming(config: &SweepConfig) -> SweepResult {
        Self::run_inner(config, true)
    }

    fn run_inner(config: &SweepConfig, streaming: bool) -> SweepResult {
        let windows = WindowSweep::run(config.n, config.threads, streaming, None);
        crate::grid::evaluate(&windows, &config.alphas)
    }

    /// The legacy reference path: classifies every topology directly
    /// against the α grid with [`SweepJob`], re-deriving window
    /// membership per grid point. Quadratic in (topologies × grid) the
    /// way the windows-first path is not — exists so equivalence tests
    /// can certify the post-pass, and for A/B timing.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` exceeds [`crate::max_sweep_n`].
    pub fn run_per_alpha(config: &SweepConfig) -> SweepResult {
        let cap = crate::max_sweep_n();
        assert!(
            config.n <= cap,
            "sweeps beyond n={cap} need a deliberate opt-in (set BNF_MAX_N)"
        );
        let engine = AnalysisEngine::new(config.threads);
        let job = SweepJob {
            alphas: config.alphas.clone(),
        };
        let records = engine.run_connected(config.n, &job);
        SweepResult {
            n: config.n,
            alphas: config.alphas.clone(),
            records,
        }
    }

    fn equilibrium_flags<'a>(&'a self, kind: GameKind) -> impl Fn(&'a GraphRecord, usize) -> bool {
        move |r: &GraphRecord, k: usize| match kind {
            GameKind::Bilateral => r.bcg_stable[k],
            GameKind::Unilateral => r.ucg_nash[k],
        }
    }

    /// Aggregates the per-α equilibrium statistics for one game.
    pub fn stats(&self, kind: GameKind) -> Vec<EquilibriumStats> {
        let flag = self.equilibrium_flags(kind);
        self.alphas
            .iter()
            .enumerate()
            .map(|(k, &alpha)| {
                let mut count = 0usize;
                let mut poa_sum = 0.0;
                let mut poa_max = 0.0f64;
                let mut links = 0u64;
                for r in &self.records {
                    if !flag(r, k) {
                        continue;
                    }
                    count += 1;
                    links += r.edges;
                    let summary = CostSummary {
                        order: self.n,
                        edges: r.edges,
                        total_distance: Some(r.total_distance),
                        kind,
                    };
                    let rho = poa_of_summary(&summary, alpha);
                    poa_sum += rho;
                    poa_max = poa_max.max(rho);
                }
                EquilibriumStats {
                    alpha,
                    count,
                    mean_poa: if count == 0 {
                        f64::NAN
                    } else {
                        poa_sum / count as f64
                    },
                    max_poa: poa_max,
                    mean_links: if count == 0 {
                        f64::NAN
                    } else {
                        links as f64 / count as f64
                    },
                }
            })
            .collect()
    }

    /// Conjecture check (Section 4.3): per α, the number of topologies
    /// that are UCG-Nash-supportable but *not* BCG-pairwise-stable. The
    /// conjecture (proved for trees as Proposition 5) predicts all zeros.
    pub fn conjecture_violations(&self) -> Vec<(Ratio, usize)> {
        self.alphas
            .iter()
            .enumerate()
            .map(|(k, &alpha)| {
                let bad = self
                    .records
                    .iter()
                    .filter(|r| r.ucg_nash[k] && !r.bcg_stable[k])
                    .count();
                (alpha, bad)
            })
            .collect()
    }

    /// Aggregates per-α statistics over the transfer-stable set
    /// (evaluated with the bilateral social cost — transfers move money
    /// between the pair, not in or out).
    pub fn transfer_stats(&self) -> Vec<EquilibriumStats> {
        self.alphas
            .iter()
            .enumerate()
            .map(|(k, &alpha)| {
                let mut count = 0usize;
                let mut poa_sum = 0.0;
                let mut poa_max = 0.0f64;
                let mut links = 0u64;
                for r in &self.records {
                    if !r.transfer_stable[k] {
                        continue;
                    }
                    count += 1;
                    links += r.edges;
                    let summary = CostSummary {
                        order: self.n,
                        edges: r.edges,
                        total_distance: Some(r.total_distance),
                        kind: GameKind::Bilateral,
                    };
                    let rho = poa_of_summary(&summary, alpha);
                    poa_sum += rho;
                    poa_max = poa_max.max(rho);
                }
                EquilibriumStats {
                    alpha,
                    count,
                    mean_poa: if count == 0 {
                        f64::NAN
                    } else {
                        poa_sum / count as f64
                    },
                    max_poa: poa_max,
                    mean_links: if count == 0 {
                        f64::NAN
                    } else {
                        links as f64 / count as f64
                    },
                }
            })
            .collect()
    }

    /// Per α, how many equilibrium topologies each game admits — the
    /// multiplicity the paper blames for the average-PoA hump at
    /// intermediate α.
    pub fn equilibrium_counts(&self) -> Vec<(Ratio, usize, usize)> {
        self.alphas
            .iter()
            .enumerate()
            .map(|(k, &alpha)| {
                let bcg = self.records.iter().filter(|r| r.bcg_stable[k]).count();
                let ucg = self.records.iter().filter(|r| r.ucg_nash[k]).count();
                (alpha, bcg, ucg)
            })
            .collect()
    }
}

/// Enumerates the *graphs* (not just counts) that are pairwise stable in
/// the BCG at `alpha` — the catalogue behind the figures, exposed for
/// cross-validation against dynamics fixed points and for inspection.
///
/// # Panics
///
/// Panics if `n` exceeds [`crate::max_sweep_n`] or `alpha <= 0`.
pub fn stable_catalog(n: usize, alpha: Ratio) -> Vec<Graph> {
    let cap = crate::max_sweep_n();
    assert!(
        n <= cap,
        "catalogues beyond n={cap} need a deliberate opt-in (set BNF_MAX_N)"
    );
    assert!(alpha > Ratio::ZERO, "link cost must be positive");
    let graphs = connected_graphs(n);
    let engine = AnalysisEngine::with_default_threads();
    let stable = engine.map(&graphs, |g, s| {
        stability_window_with(g, &mut s.bfs).is_some_and(|w| w.contains(alpha))
    });
    graphs
        .into_iter()
        .zip(stable)
        .filter_map(|(g, keep)| keep.then_some(g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep(n: usize) -> SweepResult {
        let config = SweepConfig {
            n,
            alphas: vec![
                Ratio::new(1, 2),
                Ratio::ONE,
                Ratio::from(2),
                Ratio::from(4),
                Ratio::from(10),
            ],
            threads: 2,
        };
        SweepResult::run(&config)
    }

    #[test]
    fn unique_stable_graph_below_one() {
        // Lemma 4: at α = 1/2 the complete graph is the only pairwise
        // stable topology (and the only UCG Nash graph is complete too).
        let sweep = tiny_sweep(5);
        let k = 0; // α = 1/2
        let stable: Vec<&GraphRecord> = sweep.records.iter().filter(|r| r.bcg_stable[k]).collect();
        assert_eq!(stable.len(), 1);
        assert_eq!(stable[0].edges, 10); // K5
        let nash: Vec<&GraphRecord> = sweep.records.iter().filter(|r| r.ucg_nash[k]).collect();
        assert_eq!(nash.len(), 1);
        assert_eq!(nash[0].edges, 10);
    }

    #[test]
    fn star_always_among_stable_above_one() {
        let sweep = tiny_sweep(5);
        for k in 1..sweep.alphas.len() {
            let has_tree_stable = sweep
                .records
                .iter()
                .any(|r| r.bcg_stable[k] && r.edges == 4);
            assert!(has_tree_stable, "alpha={}", sweep.alphas[k]);
        }
    }

    #[test]
    fn streaming_sweep_bit_identical_to_materializing() {
        let config = SweepConfig {
            n: 6,
            alphas: vec![Ratio::new(1, 2), Ratio::ONE, Ratio::from(3)],
            threads: 2,
        };
        let mat = SweepResult::run(&config);
        let stream = SweepResult::run_streaming(&config);
        assert_eq!(stream.records, mat.records, "records must match in order");
        for kind in [GameKind::Bilateral, GameKind::Unilateral] {
            for (s, m) in stream.stats(kind).iter().zip(mat.stats(kind).iter()) {
                assert_eq!(s.count, m.count);
                // f64 equality is the point: identical record order means
                // identical summation order, bit for bit.
                assert_eq!(s.mean_poa.to_bits(), m.mean_poa.to_bits());
                assert_eq!(s.max_poa.to_bits(), m.max_poa.to_bits());
                assert_eq!(s.mean_links.to_bits(), m.mean_links.to_bits());
            }
        }
    }

    #[test]
    fn stats_shapes_and_sanity() {
        let sweep = tiny_sweep(5);
        let bcg = sweep.stats(GameKind::Bilateral);
        let ucg = sweep.stats(GameKind::Unilateral);
        assert_eq!(bcg.len(), 5);
        for s in bcg.iter().chain(&ucg) {
            assert!(s.count > 0, "equilibrium set never empty (star/complete)");
            assert!(s.mean_poa >= 1.0 - 1e-12, "PoA >= 1, got {}", s.mean_poa);
            assert!(s.max_poa >= s.mean_poa - 1e-12);
            assert!(s.mean_links >= (sweep.n - 1) as f64 - 1e-9);
        }
    }

    #[test]
    fn conjecture_violations_at_n5_only_at_boundary() {
        // The paper conjectures UCG-Nash ⊆ BCG-stable (Section 4.3). At
        // n = 5 exactly one violating topology exists on this grid — the
        // triangle with two pendants at the knife-edge α = 2, where the
        // UCG owner of the severable edge is exactly indifferent while
        // the BCG non-owner strictly gains by severing. (At n = 6 the
        // theta graph violates the conjecture on a whole interval; see
        // bnf-core::theorems.)
        let sweep = tiny_sweep(5);
        for (alpha, bad) in sweep.conjecture_violations() {
            if alpha == Ratio::from(2) {
                assert_eq!(bad, 1, "exactly the pendant-triangle at alpha=2");
            } else {
                assert_eq!(bad, 0, "no violation at alpha={alpha}");
            }
        }
    }

    #[test]
    fn bcg_admits_at_least_as_many_equilibria_in_tail() {
        // Section 4.4: the BCG stable set is richer; by α large both
        // collapse toward trees, but BCG keeps (weakly) more topologies
        // at every grid point here.
        let sweep = tiny_sweep(6);
        for (alpha, bcg, ucg) in sweep.equilibrium_counts() {
            assert!(bcg >= ucg, "alpha={alpha}: bcg={bcg} < ucg={ucg}");
        }
    }
}
