//! Lemmas 4 and 5, verified exhaustively: at each link cost the
//! efficient graph over ALL connected topologies is the complete graph
//! (α < 1), the star (α > 1), and exactly those two tie at α = 1.
//!
//! Since PR 3 this scan folds the shared [`WindowRecord`] catalogue (a
//! [`WindowSweep`]) instead of running its own engine job: the social
//! cost needs only (order, edges, total distance), and the minimizer
//! shape certificate is derivable from the same fields — a connected
//! graph is complete iff it has all `n(n-1)/2` edges, and a tree
//! (`n-1` edges) is the star iff its ordered distance total hits the
//! tree minimum `2(n-1)²` (the star uniquely minimizes the Wiener
//! index over trees). Sharing the emitter means `efficiency_scan`
//! rides the same `--atlas` cache as the figure sweeps.

use bnf_core::WindowRecord;
use bnf_games::{optimal_social_cost, CostSummary, GameKind, Ratio};

use crate::sweep::WindowSweep;

/// How an efficiency minimizer is labelled in the Lemma 4/5 tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinimizerShape {
    /// The complete graph `K_n`.
    Complete,
    /// The star `K_{1,n-1}`.
    Star,
    /// Anything else (possible only if a lemma were violated), tagged
    /// with its edge count.
    Other(u64),
}

impl MinimizerShape {
    /// Labels one classified topology on `n` vertices.
    fn of(n: usize, rec: &WindowRecord) -> MinimizerShape {
        if rec.edges == (n * n.saturating_sub(1) / 2) as u64 {
            MinimizerShape::Complete
        } else if rec.edges == n.saturating_sub(1) as u64
            && rec.total_distance == star_total_distance(n)
        {
            MinimizerShape::Star
        } else {
            MinimizerShape::Other(rec.edges)
        }
    }
}

/// Ordered-pair distance total of the star `K_{1,n-1}` — the unique
/// minimum over trees on `n` vertices: `2(n-1)` hub pairs at distance 1
/// plus `(n-1)(n-2)` leaf pairs at distance 2.
fn star_total_distance(n: usize) -> u64 {
    let m = n.saturating_sub(1) as u64;
    2 * m * m
}

impl std::fmt::Display for MinimizerShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinimizerShape::Complete => write!(f, "complete"),
            MinimizerShape::Star => write!(f, "star"),
            MinimizerShape::Other(m) => write!(f, "other(m={m})"),
        }
    }
}

/// One row of the exhaustive Lemma 4/5 verification table.
#[derive(Debug, Clone)]
pub struct EfficiencyRow {
    /// The link cost.
    pub alpha: Ratio,
    /// The exhaustive minimum social cost over all connected topologies.
    pub min_cost: Ratio,
    /// The closed-form optimum of Lemmas 4/5.
    pub formula: Ratio,
    /// Whether the exhaustive minimum matches the closed form.
    pub matches: bool,
    /// The shape of every minimizer at this α.
    pub minimizers: Vec<MinimizerShape>,
}

/// The complete Lemma 4/5 verification: the per-α table plus how many
/// topologies were scanned.
#[derive(Debug, Clone)]
pub struct EfficiencyScan {
    /// Number of players.
    pub n: usize,
    /// Number of connected topologies classified (the exhaustive base).
    pub topologies: usize,
    /// One verification row per α.
    pub rows: Vec<EfficiencyRow>,
}

/// Classifies every connected topology on `n` vertices through the
/// shared window emitter and folds the per-α efficiency table,
/// materializing the enumeration first.
///
/// # Panics
///
/// Panics if `n` exceeds [`crate::max_sweep_n`] (the `BNF_MAX_N`
/// opt-in shared by every exhaustive scan) or the α grid is empty.
pub fn efficiency_rows(n: usize, alphas: &[Ratio], threads: usize) -> EfficiencyScan {
    efficiency_scan_windows(&WindowSweep::run(n, threads, false, None), alphas)
}

/// Streaming twin of [`efficiency_rows`]: classifies topologies as the
/// enumeration generates them without materializing the graph list.
/// Produces the identical table.
///
/// # Panics
///
/// Panics if `n` exceeds [`crate::max_sweep_n`] or the α grid is empty.
pub fn efficiency_rows_streaming(n: usize, alphas: &[Ratio], threads: usize) -> EfficiencyScan {
    efficiency_scan_windows(&WindowSweep::run(n, threads, true, None), alphas)
}

/// The per-α minimization over an already-classified [`WindowSweep`] —
/// the shared fold behind both enumeration paths and the atlas-backed
/// `efficiency_scan` binary.
///
/// # Panics
///
/// Panics if the α grid is empty (the enumeration may be empty only
/// for `n = 0`, which no caller reaches).
pub fn efficiency_scan_windows(windows: &WindowSweep, alphas: &[Ratio]) -> EfficiencyScan {
    assert!(!alphas.is_empty(), "the α grid must be nonempty");
    let n = windows.n;
    let records = &windows.records;
    let rows = alphas
        .iter()
        .map(|&alpha| {
            let costs: Vec<Ratio> = records
                .iter()
                .map(|r| {
                    CostSummary {
                        order: n,
                        edges: r.edges,
                        total_distance: Some(r.total_distance),
                        kind: GameKind::Bilateral,
                    }
                    .social_cost_exact(alpha)
                    .expect("connected")
                })
                .collect();
            let min_cost = costs.iter().copied().min().expect("nonempty enumeration");
            let minimizers: Vec<MinimizerShape> = records
                .iter()
                .zip(&costs)
                .filter(|&(_, &c)| c == min_cost)
                .map(|(r, _)| MinimizerShape::of(n, r))
                .collect();
            let formula = optimal_social_cost(GameKind::Bilateral, n, alpha);
            EfficiencyRow {
                alpha,
                min_cost,
                formula,
                matches: min_cost == formula,
                minimizers,
            }
        })
        .collect();
    EfficiencyScan {
        n,
        topologies: records.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemmas_4_and_5_hold_exhaustively_at_n5() {
        let alphas = [Ratio::new(1, 2), Ratio::ONE, Ratio::from(2), Ratio::from(8)];
        let scan = efficiency_rows(5, &alphas, 2);
        assert_eq!(scan.n, 5);
        assert_eq!(scan.topologies, 21); // A001349(5)
        let rows = scan.rows;
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.matches,
                "alpha={}: {} != {}",
                row.alpha, row.min_cost, row.formula
            );
        }
        // α < 1: unique minimizer, the complete graph.
        assert_eq!(rows[0].minimizers, vec![MinimizerShape::Complete]);
        // α = 1 is the crossover: EVERY diameter-≤2 graph meets the
        // bound (see tests/efficiency_lemmas.rs), the complete graph and
        // the star among them.
        assert!(rows[1].minimizers.len() > 2);
        assert!(rows[1].minimizers.contains(&MinimizerShape::Complete));
        assert!(rows[1].minimizers.contains(&MinimizerShape::Star));
        assert!(rows[1]
            .minimizers
            .iter()
            .any(|s| matches!(s, MinimizerShape::Other(_))));
        // α > 1: unique minimizer, the star.
        for row in &rows[2..] {
            assert_eq!(
                row.minimizers,
                vec![MinimizerShape::Star],
                "alpha={}",
                row.alpha
            );
        }
    }

    #[test]
    fn streaming_scan_matches_materializing() {
        let alphas = [Ratio::new(1, 2), Ratio::ONE, Ratio::from(3)];
        let mat = efficiency_rows(6, &alphas, 2);
        let stream = efficiency_rows_streaming(6, &alphas, 2);
        assert_eq!(stream.topologies, mat.topologies);
        for (s, m) in stream.rows.iter().zip(mat.rows.iter()) {
            assert_eq!(s.alpha, m.alpha);
            assert_eq!(s.min_cost, m.min_cost);
            assert_eq!(s.matches, m.matches);
            assert_eq!(s.minimizers, m.minimizers);
        }
    }

    #[test]
    fn star_certificate_matches_structural_check() {
        // The distance-sum star test must agree with the structural
        // "tree with a universal vertex" definition on every connected
        // topology (trees and non-trees alike) at small n.
        use bnf_enumerate::connected_graphs;
        for n in 2..=6 {
            for g in connected_graphs(n) {
                let structural = g.is_tree() && (0..n).any(|v| g.degree(v) == n - 1);
                let rec = WindowRecord {
                    key: String::new(),
                    order: n as u32,
                    edges: g.edge_count() as u64,
                    total_distance: g.total_distance().unwrap(),
                    stability: None,
                    transfer: None,
                    ucg_support: Vec::new(),
                };
                // `of` labels K2 "complete" first (as the old job's
                // table did); a Complete-labelled *tree* is still a
                // structural star.
                let labelled_star = match MinimizerShape::of(n, &rec) {
                    MinimizerShape::Star => true,
                    MinimizerShape::Complete => rec.edges == (n - 1) as u64,
                    MinimizerShape::Other(_) => false,
                };
                assert_eq!(labelled_star, structural, "n={n}, g={}", g.to_graph6());
            }
        }
    }

    #[test]
    fn shape_labels_render() {
        assert_eq!(MinimizerShape::Complete.to_string(), "complete");
        assert_eq!(MinimizerShape::Star.to_string(), "star");
        assert_eq!(MinimizerShape::Other(9).to_string(), "other(m=9)");
    }
}
