//! Lemmas 4 and 5, verified exhaustively as an engine job: at each link
//! cost the efficient graph over ALL connected topologies is the
//! complete graph (α < 1), the star (α > 1), and exactly those two tie
//! at α = 1.
//!
//! The per-topology work (cost summary + shape certificate) runs on the
//! [`AnalysisEngine`]; the per-α minimization folds the records.

use bnf_engine::{Analysis, AnalysisEngine, WorkerScratch};
use bnf_games::{optimal_social_cost, CostSummary, GameKind, Ratio};
use bnf_graph::Graph;

/// Per-topology data for the efficiency scan: the exact cost summary
/// plus the shape certificate used to label minimizers.
#[derive(Debug, Clone)]
pub struct EfficiencyRecord {
    /// The exact social-cost summary (order, edges, total distance).
    pub summary: CostSummary,
    /// Whether the topology is the complete graph.
    pub complete: bool,
    /// Whether the topology is a star (a tree with a universal vertex).
    pub star: bool,
}

/// How an efficiency minimizer is labelled in the Lemma 4/5 tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinimizerShape {
    /// The complete graph `K_n`.
    Complete,
    /// The star `K_{1,n-1}`.
    Star,
    /// Anything else (possible only if a lemma were violated), tagged
    /// with its edge count.
    Other(u64),
}

impl std::fmt::Display for MinimizerShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinimizerShape::Complete => write!(f, "complete"),
            MinimizerShape::Star => write!(f, "star"),
            MinimizerShape::Other(m) => write!(f, "other(m={m})"),
        }
    }
}

/// The engine job computing one [`EfficiencyRecord`] per topology.
#[derive(Debug, Clone, Copy)]
pub struct EfficiencyJob;

impl Analysis for EfficiencyJob {
    type Output = EfficiencyRecord;

    fn classify(&self, g: &Graph, scratch: &mut WorkerScratch) -> EfficiencyRecord {
        let n = g.order();
        let summary = CostSummary {
            order: n,
            edges: g.edge_count() as u64,
            total_distance: g.total_distance_with(&mut scratch.bfs),
            kind: GameKind::Bilateral,
        };
        EfficiencyRecord {
            complete: g.edge_count() == n * (n - 1) / 2,
            star: g.is_tree() && (0..n).any(|v| g.degree(v) == n - 1),
            summary,
        }
    }
}

/// One row of the exhaustive Lemma 4/5 verification table.
#[derive(Debug, Clone)]
pub struct EfficiencyRow {
    /// The link cost.
    pub alpha: Ratio,
    /// The exhaustive minimum social cost over all connected topologies.
    pub min_cost: Ratio,
    /// The closed-form optimum of Lemmas 4/5.
    pub formula: Ratio,
    /// Whether the exhaustive minimum matches the closed form.
    pub matches: bool,
    /// The shape of every minimizer at this α.
    pub minimizers: Vec<MinimizerShape>,
}

/// The complete Lemma 4/5 verification: the per-α table plus how many
/// topologies were scanned.
#[derive(Debug, Clone)]
pub struct EfficiencyScan {
    /// Number of players.
    pub n: usize,
    /// Number of connected topologies classified (the exhaustive base).
    pub topologies: usize,
    /// One verification row per α.
    pub rows: Vec<EfficiencyRow>,
}

/// Classifies every connected topology on `n` vertices and folds the
/// per-α efficiency table, materializing the enumeration first.
///
/// # Panics
///
/// Panics if `n` exceeds [`crate::max_sweep_n`] (the `BNF_MAX_N`
/// opt-in shared by every exhaustive scan) or the α grid is empty.
pub fn efficiency_rows(n: usize, alphas: &[Ratio], threads: usize) -> EfficiencyScan {
    assert_scan_bounds(n, alphas);
    let records = AnalysisEngine::new(threads).run_connected(n, &EfficiencyJob);
    fold_rows(n, &records, alphas)
}

/// Streaming twin of [`efficiency_rows`]: classifies topologies as the
/// enumeration generates them
/// (`AnalysisEngine::run_connected_streaming`) without materializing
/// the graph list — at n = 9 this roughly halves peak RSS, since the
/// per-topology records here are small. Produces the identical table.
///
/// # Panics
///
/// Panics if `n` exceeds [`crate::max_sweep_n`] or the α grid is empty.
pub fn efficiency_rows_streaming(n: usize, alphas: &[Ratio], threads: usize) -> EfficiencyScan {
    assert_scan_bounds(n, alphas);
    let records = AnalysisEngine::new(threads).run_connected_streaming(n, &EfficiencyJob);
    fold_rows(n, &records, alphas)
}

fn assert_scan_bounds(n: usize, alphas: &[Ratio]) {
    let cap = crate::max_sweep_n();
    assert!(
        n <= cap,
        "scans beyond n={cap} need a deliberate opt-in (set BNF_MAX_N)"
    );
    assert!(!alphas.is_empty(), "the α grid must be nonempty");
}

/// The per-α minimization over classified records, shared by both
/// enumeration paths.
fn fold_rows(n: usize, records: &[EfficiencyRecord], alphas: &[Ratio]) -> EfficiencyScan {
    let rows = alphas
        .iter()
        .map(|&alpha| {
            let costs: Vec<Ratio> = records
                .iter()
                .map(|r| r.summary.social_cost_exact(alpha).expect("connected"))
                .collect();
            let min_cost = costs.iter().copied().min().expect("nonempty enumeration");
            let minimizers: Vec<MinimizerShape> = records
                .iter()
                .zip(&costs)
                .filter(|&(_, &c)| c == min_cost)
                .map(|(r, _)| {
                    if r.complete {
                        MinimizerShape::Complete
                    } else if r.star {
                        MinimizerShape::Star
                    } else {
                        MinimizerShape::Other(r.summary.edges)
                    }
                })
                .collect();
            let formula = optimal_social_cost(GameKind::Bilateral, n, alpha);
            EfficiencyRow {
                alpha,
                min_cost,
                formula,
                matches: min_cost == formula,
                minimizers,
            }
        })
        .collect();
    EfficiencyScan {
        n,
        topologies: records.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemmas_4_and_5_hold_exhaustively_at_n5() {
        let alphas = [Ratio::new(1, 2), Ratio::ONE, Ratio::from(2), Ratio::from(8)];
        let scan = efficiency_rows(5, &alphas, 2);
        assert_eq!(scan.n, 5);
        assert_eq!(scan.topologies, 21); // A001349(5)
        let rows = scan.rows;
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.matches,
                "alpha={}: {} != {}",
                row.alpha, row.min_cost, row.formula
            );
        }
        // α < 1: unique minimizer, the complete graph.
        assert_eq!(rows[0].minimizers, vec![MinimizerShape::Complete]);
        // α = 1 is the crossover: EVERY diameter-≤2 graph meets the
        // bound (see tests/efficiency_lemmas.rs), the complete graph and
        // the star among them.
        assert!(rows[1].minimizers.len() > 2);
        assert!(rows[1].minimizers.contains(&MinimizerShape::Complete));
        assert!(rows[1].minimizers.contains(&MinimizerShape::Star));
        assert!(rows[1]
            .minimizers
            .iter()
            .any(|s| matches!(s, MinimizerShape::Other(_))));
        // α > 1: unique minimizer, the star.
        for row in &rows[2..] {
            assert_eq!(
                row.minimizers,
                vec![MinimizerShape::Star],
                "alpha={}",
                row.alpha
            );
        }
    }

    #[test]
    fn streaming_scan_matches_materializing() {
        let alphas = [Ratio::new(1, 2), Ratio::ONE, Ratio::from(3)];
        let mat = efficiency_rows(6, &alphas, 2);
        let stream = efficiency_rows_streaming(6, &alphas, 2);
        assert_eq!(stream.topologies, mat.topologies);
        for (s, m) in stream.rows.iter().zip(mat.rows.iter()) {
            assert_eq!(s.alpha, m.alpha);
            assert_eq!(s.min_cost, m.min_cost);
            assert_eq!(s.matches, m.matches);
            assert_eq!(s.minimizers, m.minimizers);
        }
    }

    #[test]
    fn shape_labels_render() {
        assert_eq!(MinimizerShape::Complete.to_string(), "complete");
        assert_eq!(MinimizerShape::Star.to_string(), "star");
        assert_eq!(MinimizerShape::Other(9).to_string(), "other(m=9)");
    }
}
