//! The [`Analysis`] job trait and the [`AnalysisEngine`] runner.

use std::sync::Mutex;

use bnf_enumerate::connected_graphs;
use bnf_graph::{CanonKey, Graph};
use bnf_stream::sync::{lock, lock_into};
use bnf_stream::{
    stream_connected, stream_connected_shard, BoundedQueue, ShardSpec, ShardStats, StreamStats,
};

use crate::executor::{default_threads, parallel_map_with};
use crate::orchestrator::{OrchestratorStats, RangeSegment};
use crate::scratch::WorkerScratch;

/// Capacity of the producer→classifier hand-off queue used by
/// [`AnalysisEngine::run_connected_streaming`], per classification
/// worker.
///
/// Deep enough to ride out bursts (a cheap level tail arriving while
/// classifiers chew on dense graphs), shallow enough that the buffered
/// graphs stay negligible next to a level frontier.
const STREAM_QUEUE_DEPTH_PER_WORKER: usize = 64;

/// How many classified records a streaming worker buffers before
/// flushing into the shared result vector — large enough to amortize
/// the lock, small enough that local buffers stay out of the memory
/// high-water mark.
const STREAM_FLUSH_EVERY: usize = 1024;

/// Asserts the streaming sort tag is *exact* at order `n`: records are
/// ordered by `(edge count, CanonKey::prefix_word)`, which reproduces
/// the full `(edge count, canonical key)` lexicographic order only
/// while the packed upper triangle — `n(n−1)/2` bits — fits the key's
/// single leading 64-bit word. Every enumerable order (`n ≤ 10`,
/// enforced by the producer) passes with room to spare; this assertion
/// exists so a future raise of the enumeration bound or the `BNF_MAX_N`
/// clamp cannot silently mis-order merged output — it must fail loudly
/// at the sort site instead.
pub(crate) fn assert_sort_tag_exact(n: usize) {
    assert!(
        n * n.saturating_sub(1) / 2 <= 64,
        "(edges, leading-word) sort tag is exact only while n(n-1)/2 <= 64 bits; n={n} needs \
         {} bits — switch the streaming sort to full CanonKey comparison before raising the \
         enumeration bound",
        n * n.saturating_sub(1) / 2,
    );
}

/// One independent per-graph classification — the unit of work every
/// empirical module defines.
///
/// Implementations must be pure per item (no cross-item state): the
/// engine classifies items in an unspecified interleaving across
/// workers, only the *output* order is guaranteed to match the input.
pub trait Analysis: Sync {
    /// The per-graph classification record.
    type Output: Send;

    /// Classifies one graph, using `scratch` for all reusable buffers.
    fn classify(&self, graph: &Graph, scratch: &mut WorkerScratch) -> Self::Output;

    /// The record-emitting path: classifies one graph given its
    /// canonical graph6 key. The `*_keyed` engine runners call this
    /// with `graph.to_graph6()` of the enumerated graph (enumeration
    /// emits canonical forms, so that string *is* the canonical key).
    ///
    /// The default ignores the key and delegates to
    /// [`Analysis::classify`]; jobs backed by a persistent store (the
    /// classification atlas) override it to consult the store before
    /// computing, and to stamp the key into the emitted record.
    fn classify_keyed(
        &self,
        key: &str,
        graph: &Graph,
        scratch: &mut WorkerScratch,
    ) -> Self::Output {
        let _ = key;
        self.classify(graph, scratch)
    }
}

/// Executes [`Analysis`] jobs over graph families with work-stealing
/// workers and per-worker scratch.
///
/// This is the architecture seam for scaling work: sharding an
/// enumeration across processes, batching α grids, or caching canonical
/// classifications all belong here, behind the same job interface.
#[derive(Debug, Clone)]
pub struct AnalysisEngine {
    threads: usize,
}

impl Default for AnalysisEngine {
    fn default() -> Self {
        Self::with_default_threads()
    }
}

impl AnalysisEngine {
    /// An engine with an explicit worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        AnalysisEngine {
            threads: threads.max(1),
        }
    }

    /// An engine sized to this machine's available parallelism.
    pub fn with_default_threads() -> Self {
        Self::new(default_threads())
    }

    /// The worker count this engine schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enumerates all connected non-isomorphic topologies on `n`
    /// vertices (canonical forms, deduplicated, deterministic order) and
    /// classifies each one.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10` (enumeration bound) and propagates panics from
    /// the job.
    pub fn run_connected<A: Analysis>(&self, n: usize, job: &A) -> Vec<A::Output> {
        self.run_on(&connected_graphs(n), job)
    }

    /// Record-emitting twin of [`AnalysisEngine::run_connected`]: each
    /// (canonical) enumerated graph is classified through
    /// [`Analysis::classify_keyed`] with its canonical graph6 string,
    /// so atlas-backed jobs can skip graphs the store already knows.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10` (enumeration bound) and propagates panics from
    /// the job.
    pub fn run_connected_keyed<A: Analysis>(&self, n: usize, job: &A) -> Vec<A::Output> {
        self.run_on_keyed(&connected_graphs(n), job)
    }

    /// Classifies an explicit list of **canonical-form** graphs through
    /// [`Analysis::classify_keyed`], preserving order. Callers passing
    /// non-canonical graphs hand the job a key that is not the
    /// canonical one — enumeration output always qualifies.
    pub fn run_on_keyed<A: Analysis>(&self, graphs: &[Graph], job: &A) -> Vec<A::Output> {
        parallel_map_with(graphs, self.threads, WorkerScratch::new, |g, s| {
            job.classify_keyed(&g.to_graph6(), g, s)
        })
    }

    /// Streaming twin of [`AnalysisEngine::run_connected`]: classifies
    /// every connected topology on `n` vertices **as it is generated**,
    /// never materializing the full graph list (the classified records
    /// themselves still scale with the topology count — they are the
    /// result).
    ///
    /// `bnf_stream::stream_connected` producer workers push canonical
    /// graphs through a bounded queue into a pool of classification
    /// workers (each owning one [`WorkerScratch`] for its lifetime). The
    /// engine's thread budget is **split** between the two pools so
    /// total concurrency stays ≈ `self.threads` instead of doubling
    /// (with a floor of one worker each — a pipeline needs both sides).
    /// The output is sorted into the exact order
    /// [`AnalysisEngine::run_connected`] produces (edge count, then
    /// canonical key), so downstream aggregation — including
    /// float-summation order — is bit-identical between the two paths.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10` (enumeration bound) and propagates panics from
    /// the job or the producer.
    pub fn run_connected_streaming<A: Analysis>(&self, n: usize, job: &A) -> Vec<A::Output> {
        self.run_connected_streaming_with(n, job, |job, g, s| job.classify(g, s))
            .0
    }

    /// Record-emitting twin of
    /// [`AnalysisEngine::run_connected_streaming`]: classifier workers
    /// call [`Analysis::classify_keyed`] with the canonical graph6 of
    /// each streamed graph (the producer emits canonical forms), so the
    /// atlas key is identical between the streaming and materializing
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10` (enumeration bound) and propagates panics from
    /// the job or the producer.
    pub fn run_connected_streaming_keyed<A: Analysis>(&self, n: usize, job: &A) -> Vec<A::Output> {
        self.run_connected_streaming_keyed_with_stats(n, job).0
    }

    /// [`AnalysisEngine::run_connected_streaming_keyed`] plus the
    /// producer's [`StreamStats`] — per-level sizes and the
    /// canonical-construction pruning counters (candidates, orbit
    /// skips, cheap/search rejections, duplicates) that the sweep
    /// binaries surface in their `--streaming` diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10` (enumeration bound) and propagates panics from
    /// the job or the producer.
    pub fn run_connected_streaming_keyed_with_stats<A: Analysis>(
        &self,
        n: usize,
        job: &A,
    ) -> (Vec<A::Output>, StreamStats) {
        self.run_connected_streaming_with(n, job, |job, g, s| {
            job.classify_keyed(&g.to_graph6(), g, s)
        })
    }

    /// Shard twin of
    /// [`AnalysisEngine::run_connected_streaming_keyed_with_stats`]:
    /// classifies only the final-level children of the contiguous
    /// parent-frontier range owned by `shard`
    /// ([`bnf_stream::stream_connected_shard`]), returning the shard's
    /// outputs in the engine's deterministic `(edges, canonical key)`
    /// order *within the shard* plus its [`ShardStats`]. Merging every
    /// shard's output of a full partition and re-sorting by the same
    /// tag reproduces [`AnalysisEngine::run_connected_keyed`] exactly —
    /// the invariant the multi-process atlas merge rests on.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10` or `n <= 1` (no frontier to shard) and
    /// propagates panics from the job or the producer.
    pub fn run_connected_streaming_keyed_shard<A: Analysis>(
        &self,
        n: usize,
        shard: ShardSpec,
        job: &A,
    ) -> (Vec<A::Output>, ShardStats) {
        self.run_connected_streaming_producer(
            n,
            job,
            |job, g, s| job.classify_keyed(&g.to_graph6(), g, s),
            |producers, sink| stream_connected_shard(n, producers, shard, sink),
        )
    }

    /// Orchestrated twin of
    /// [`AnalysisEngine::run_connected_streaming_keyed_with_stats`]:
    /// builds the level-`n − 1` parent frontier **once**, oversplits it
    /// into `ranges` contiguous parent ranges (`None` →
    /// [`crate::auto_range_count`], ≈ 16× the thread count), and has
    /// this engine's worker threads steal ranges dynamically — each
    /// fusing the pruned range producer with the keyed classifier on
    /// its own [`WorkerScratch`] — while the calling thread drains
    /// completed segments into `on_segment` in completion order (the
    /// in-process analogue of merging `--shard` segment files).
    ///
    /// Returns all outputs re-sorted into the engine's deterministic
    /// `(edge count, canonical key)` order — byte-identical to
    /// [`AnalysisEngine::run_connected_streaming_keyed`] — plus
    /// [`OrchestratorStats`] whose totals equal the unsharded
    /// [`StreamStats`] exactly, with the frontier built (and its
    /// counter share counted) exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10` or `n <= 1` (no parent frontier to
    /// orchestrate — use the plain streaming runner); propagates panics
    /// from the job, the producer, and `on_segment`.
    pub fn run_connected_streaming_keyed_orchestrated<A, W>(
        &self,
        n: usize,
        ranges: Option<usize>,
        job: &A,
        on_segment: W,
    ) -> (Vec<A::Output>, OrchestratorStats)
    where
        A: Analysis,
        W: FnMut(RangeSegment<'_, A::Output>),
    {
        crate::orchestrator::run_orchestrated(self.threads, n, ranges, job, on_segment)
    }

    /// Resumed twin of
    /// [`AnalysisEngine::run_connected_streaming_keyed_orchestrated`]:
    /// runs the partition described by `plan` but executes **only** its
    /// missing ranges — indices listed as completed were durably
    /// persisted by a prior run and are never re-streamed. The rebuilt
    /// frontier's length is asserted against `plan.frontier_len` before
    /// any range runs, so a stale plan from an incompatible build fails
    /// loudly instead of skipping the wrong parents.
    ///
    /// The returned outputs and [`OrchestratorStats`] cover the executed
    /// ranges only; a resumed caller replays the full catalogue from its
    /// durable store once coverage closes, never from this partial
    /// merge.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as the unresumed runner, plus when
    /// `plan` is incompatible with the rebuilt frontier (wrong
    /// `frontier_len`, completed index ≥ `plan.ranges`).
    pub fn run_connected_streaming_keyed_orchestrated_resumed<A, W>(
        &self,
        n: usize,
        plan: &crate::ResumePlan,
        job: &A,
        on_segment: W,
    ) -> (Vec<A::Output>, OrchestratorStats)
    where
        A: Analysis,
        W: FnMut(RangeSegment<'_, A::Output>),
    {
        crate::orchestrator::run_orchestrated_with_plan(
            self.threads,
            n,
            None,
            Some(plan),
            job,
            on_segment,
        )
    }

    /// Shared body of the streaming runners, generic over how a worker
    /// invokes the job (plain vs keyed).
    fn run_connected_streaming_with<A, F>(
        &self,
        n: usize,
        job: &A,
        classify: F,
    ) -> (Vec<A::Output>, StreamStats)
    where
        A: Analysis,
        F: Fn(&A, &Graph, &mut WorkerScratch) -> A::Output + Sync,
    {
        self.run_connected_streaming_producer(n, job, classify, |producers, sink| {
            stream_connected(n, producers, sink)
        })
    }

    /// The streaming pipeline itself, generic over the producer (full
    /// enumeration vs one frontier shard — both feed the same bounded
    /// queue and classifier pool and return their own stats type).
    fn run_connected_streaming_producer<A, F, P, R>(
        &self,
        n: usize,
        job: &A,
        classify: F,
        produce: P,
    ) -> (Vec<A::Output>, R)
    where
        A: Analysis,
        F: Fn(&A, &Graph, &mut WorkerScratch) -> A::Output + Sync,
        P: FnOnce(usize, &(dyn Fn(Graph, CanonKey) -> bool + Sync)) -> R,
    {
        // Sort tag: (edge count, canonical-adjacency word) — exact only
        // while the whole packed upper triangle fits the key's leading
        // word; asserted here at the sort site, not assumed.
        assert_sort_tag_exact(n);
        let classifiers = self.threads.div_ceil(2);
        let producers = (self.threads - classifiers).max(1);
        let queue: BoundedQueue<(Graph, CanonKey)> =
            BoundedQueue::new(classifiers * STREAM_QUEUE_DEPTH_PER_WORKER);
        let results: Mutex<Vec<(usize, u64, A::Output)>> = Mutex::new(Vec::new());
        let mut stats = None;
        std::thread::scope(|scope| {
            for _ in 0..classifiers {
                scope.spawn(|| {
                    // Close the pipeline if this classifier panics so the
                    // producer cannot block forever on a full queue.
                    let _guard = queue.close_guard();
                    let mut scratch = WorkerScratch::new();
                    let mut local = Vec::with_capacity(STREAM_FLUSH_EVERY);
                    while let Some((graph, key)) = queue.pop() {
                        let out = classify(job, &graph, &mut scratch);
                        local.push((graph.edge_count(), key.prefix_word(), out));
                        // Flush in batches: one worker must never hold a
                        // second full copy of the result set in its local
                        // buffer (the n = 9 peak-RSS regression).
                        if local.len() >= STREAM_FLUSH_EVERY {
                            lock(&results).append(&mut local);
                        }
                    }
                    lock(&results).append(&mut local);
                });
            }
            // The producer runs on this thread (spawning its own level
            // workers); the guard closes the queue on return *and* on a
            // producer panic, releasing the classifiers either way. A
            // failed push means a classifier died and closed the queue —
            // returning false cancels the enumeration instead of
            // canonicalizing the rest of the graph space for nobody.
            let _guard = queue.close_guard();
            stats = Some(produce(producers, &|graph, key| queue.push((graph, key))));
        });
        // A high-water mark at queue capacity means the classifiers were
        // the bottleneck and the bound actually throttled the producer.
        bnf_obs::Recorder::global()
            .record_max("stream_queue_high_water", queue.high_water() as u64);
        let mut tagged = lock_into(results);
        bnf_obs::Recorder::global().time("sort", || tagged.sort_by_key(|t| (t.0, t.1)));
        (
            tagged.into_iter().map(|(_, _, out)| out).collect(),
            stats.expect("producer ran"),
        )
    }

    /// Classifies an explicit graph list (gallery exhibits, counter-
    /// example families, …), preserving its order.
    pub fn run_on<A: Analysis>(&self, graphs: &[Graph], job: &A) -> Vec<A::Output> {
        parallel_map_with(graphs, self.threads, WorkerScratch::new, |g, s| {
            job.classify(g, s)
        })
    }

    /// Runs an arbitrary per-item function with per-worker scratch —
    /// for jobs whose items are not graphs (cycle lengths, α grids).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &mut WorkerScratch) -> R + Sync,
    {
        parallel_map_with(items, self.threads, WorkerScratch::new, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EdgeCount;
    impl Analysis for EdgeCount {
        type Output = usize;
        fn classify(&self, g: &Graph, _scratch: &mut WorkerScratch) -> usize {
            g.edge_count()
        }
    }

    #[test]
    fn run_connected_matches_enumeration() {
        let engine = AnalysisEngine::new(4);
        let counts = engine.run_connected(6, &EdgeCount);
        assert_eq!(counts.len(), 112); // A001349(6)
                                       // Deterministic enumeration order: sorted by edge count first.
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.first().unwrap(), 5); // a tree
        assert_eq!(*counts.last().unwrap(), 15); // K6
    }

    #[test]
    fn streaming_matches_materializing_exactly() {
        // Same outputs in the same order — the property the empirics
        // byte-match guarantee rests on.
        struct Census;
        impl Analysis for Census {
            type Output = (usize, Option<u64>);
            fn classify(&self, g: &Graph, s: &mut WorkerScratch) -> Self::Output {
                (g.edge_count(), g.total_distance_with(&mut s.bfs))
            }
        }
        for n in 0..8 {
            let engine = AnalysisEngine::new(3);
            assert_eq!(
                engine.run_connected_streaming(n, &Census),
                engine.run_connected(n, &Census),
                "n={n}"
            );
        }
    }

    #[test]
    fn keyed_paths_pass_canonical_graph6_keys() {
        // The keyed runners must (a) default to `classify` output and
        // (b) hand every job the graph's own graph6 — which for
        // enumeration output is the canonical key.
        struct KeyCheck;
        impl Analysis for KeyCheck {
            type Output = (String, usize);
            fn classify(&self, g: &Graph, _s: &mut WorkerScratch) -> Self::Output {
                ("unkeyed".into(), g.edge_count())
            }
            fn classify_keyed(&self, key: &str, g: &Graph, _s: &mut WorkerScratch) -> Self::Output {
                let decoded = Graph::from_graph6(key).expect("key must be valid graph6");
                assert_eq!(&decoded, g, "keyed runners pass the graph's own encoding");
                assert_eq!(
                    decoded.canonical_key(),
                    g.canonical_key(),
                    "enumerated graphs are canonical, so the key is canonical"
                );
                (key.to_string(), g.edge_count())
            }
        }
        let engine = AnalysisEngine::new(3);
        let keyed = engine.run_connected_keyed(6, &KeyCheck);
        assert_eq!(keyed.len(), 112);
        assert!(keyed.iter().all(|(k, _)| k != "unkeyed"));
        // Streaming keyed: identical outputs in identical order.
        assert_eq!(engine.run_connected_streaming_keyed(6, &KeyCheck), keyed);
        // Keys are unique — one per isomorphism class.
        let mut keys: Vec<&String> = keyed.iter().map(|(k, _)| k).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 112);
    }

    #[test]
    fn keyed_default_falls_back_to_classify() {
        // A job that does not override classify_keyed behaves exactly
        // like the unkeyed path.
        let engine = AnalysisEngine::new(2);
        assert_eq!(
            engine.run_connected_keyed(5, &EdgeCount),
            engine.run_connected(5, &EdgeCount)
        );
    }

    #[test]
    fn streaming_stats_surface_pruning_counters() {
        let engine = AnalysisEngine::new(2);
        let (counts, stats) = engine.run_connected_streaming_keyed_with_stats(6, &EdgeCount);
        assert_eq!(counts.len(), 112);
        assert_eq!(stats.emitted(), 112);
        assert_eq!(stats.prune.duplicates, 0);
        assert!(stats.prune.accepted() >= 112);
        assert!(stats.prune.candidates > 0);
    }

    #[test]
    fn sharded_outputs_merge_into_unsharded_keyed_run() {
        // A full partition's outputs, concatenated and re-sorted by the
        // engine tag, must equal run_connected_keyed exactly — and each
        // shard must already be tag-sorted internally.
        struct Tagged;
        impl Analysis for Tagged {
            type Output = (usize, String);
            fn classify_keyed(&self, key: &str, g: &Graph, _s: &mut WorkerScratch) -> Self::Output {
                (g.edge_count(), key.to_string())
            }
            fn classify(&self, g: &Graph, _s: &mut WorkerScratch) -> Self::Output {
                (g.edge_count(), "unkeyed".into())
            }
        }
        let engine = AnalysisEngine::new(3);
        let whole = engine.run_connected_keyed(7, &Tagged);
        for count in [1usize, 4] {
            let mut merged = Vec::new();
            let mut emitted = 0u64;
            for index in 0..count {
                let (out, run) = engine.run_connected_streaming_keyed_shard(
                    7,
                    ShardSpec::new(index, count),
                    &Tagged,
                );
                // Engine tag order within the shard: edge counts are
                // non-decreasing (the word tiebreak is not the graph6
                // string's lexicographic order, so only the leading
                // component is checkable here).
                assert!(out.windows(2).all(|w| w[0].0 <= w[1].0), "shard not sorted");
                emitted += run.stats.emitted();
                merged.extend(out);
            }
            merged.sort();
            let mut expect = whole.clone();
            expect.sort();
            assert_eq!(merged, expect, "count={count}");
            assert_eq!(emitted, 853, "count={count}");
        }
    }

    #[test]
    fn sort_tag_exactness_is_asserted_not_assumed() {
        // Every enumerable order passes (45 bits at n = 10), n = 11
        // still fits the word (55 bits), and the first order whose
        // packed triangle overflows the leading word must panic at the
        // sort site — before any mis-ordered merge can happen.
        for n in 0..=11 {
            assert_sort_tag_exact(n);
        }
        let caught = std::panic::catch_unwind(|| assert_sort_tag_exact(12));
        assert!(caught.is_err(), "n=12 (66 bits) must trip the sort bound");
    }

    #[test]
    fn streaming_single_thread() {
        let engine = AnalysisEngine::new(1);
        let counts = engine.run_connected_streaming(6, &EdgeCount);
        assert_eq!(counts.len(), 112);
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn streaming_job_panic_propagates_without_deadlock() {
        struct Boom;
        impl Analysis for Boom {
            type Output = ();
            fn classify(&self, g: &Graph, _s: &mut WorkerScratch) {
                assert!(g.edge_count() < 9, "boom"); // K5 trips this
            }
        }
        let caught = std::panic::catch_unwind(|| {
            AnalysisEngine::new(2).run_connected_streaming(5, &Boom);
        });
        assert!(caught.is_err(), "classifier panic must reach the caller");
    }

    #[test]
    fn run_on_preserves_order_and_uses_scratch() {
        struct TotalDistance;
        impl Analysis for TotalDistance {
            type Output = Option<u64>;
            fn classify(&self, g: &Graph, scratch: &mut WorkerScratch) -> Option<u64> {
                g.total_distance_with(&mut scratch.bfs)
            }
        }
        let graphs = vec![
            Graph::complete(4),
            Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap(),
            Graph::empty(3),
        ];
        let engine = AnalysisEngine::new(2);
        let totals = engine.run_on(&graphs, &TotalDistance);
        assert_eq!(totals, vec![Some(12), Some(20), None]);
    }

    #[test]
    fn map_over_non_graph_items() {
        let engine = AnalysisEngine::new(3);
        let items: Vec<usize> = (3..10).collect();
        let orders = engine.map(&items, |&n, s| {
            let g = Graph::complete(n);
            g.total_distance_with(&mut s.bfs).unwrap()
        });
        let expected: Vec<u64> = (3..10).map(|n| (n * (n - 1)) as u64).collect();
        assert_eq!(orders, expected);
    }

    #[test]
    fn engine_thread_floor() {
        assert_eq!(AnalysisEngine::new(0).threads(), 1);
        assert!(AnalysisEngine::with_default_threads().threads() >= 1);
    }
}
