//! The [`Analysis`] job trait and the [`AnalysisEngine`] runner.

use bnf_enumerate::connected_graphs;
use bnf_graph::Graph;

use crate::executor::{default_threads, parallel_map_with};
use crate::scratch::WorkerScratch;

/// One independent per-graph classification — the unit of work every
/// empirical module defines.
///
/// Implementations must be pure per item (no cross-item state): the
/// engine classifies items in an unspecified interleaving across
/// workers, only the *output* order is guaranteed to match the input.
pub trait Analysis: Sync {
    /// The per-graph classification record.
    type Output: Send;

    /// Classifies one graph, using `scratch` for all reusable buffers.
    fn classify(&self, graph: &Graph, scratch: &mut WorkerScratch) -> Self::Output;
}

/// Executes [`Analysis`] jobs over graph families with work-stealing
/// workers and per-worker scratch.
///
/// This is the architecture seam for scaling work: sharding an
/// enumeration across processes, batching α grids, or caching canonical
/// classifications all belong here, behind the same job interface.
#[derive(Debug, Clone)]
pub struct AnalysisEngine {
    threads: usize,
}

impl Default for AnalysisEngine {
    fn default() -> Self {
        Self::with_default_threads()
    }
}

impl AnalysisEngine {
    /// An engine with an explicit worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        AnalysisEngine {
            threads: threads.max(1),
        }
    }

    /// An engine sized to this machine's available parallelism.
    pub fn with_default_threads() -> Self {
        Self::new(default_threads())
    }

    /// The worker count this engine schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enumerates all connected non-isomorphic topologies on `n`
    /// vertices (canonical forms, deduplicated, deterministic order) and
    /// classifies each one.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10` (enumeration bound) and propagates panics from
    /// the job.
    pub fn run_connected<A: Analysis>(&self, n: usize, job: &A) -> Vec<A::Output> {
        self.run_on(&connected_graphs(n), job)
    }

    /// Classifies an explicit graph list (gallery exhibits, counter-
    /// example families, …), preserving its order.
    pub fn run_on<A: Analysis>(&self, graphs: &[Graph], job: &A) -> Vec<A::Output> {
        parallel_map_with(graphs, self.threads, WorkerScratch::new, |g, s| {
            job.classify(g, s)
        })
    }

    /// Runs an arbitrary per-item function with per-worker scratch —
    /// for jobs whose items are not graphs (cycle lengths, α grids).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &mut WorkerScratch) -> R + Sync,
    {
        parallel_map_with(items, self.threads, WorkerScratch::new, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EdgeCount;
    impl Analysis for EdgeCount {
        type Output = usize;
        fn classify(&self, g: &Graph, _scratch: &mut WorkerScratch) -> usize {
            g.edge_count()
        }
    }

    #[test]
    fn run_connected_matches_enumeration() {
        let engine = AnalysisEngine::new(4);
        let counts = engine.run_connected(6, &EdgeCount);
        assert_eq!(counts.len(), 112); // A001349(6)
                                       // Deterministic enumeration order: sorted by edge count first.
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.first().unwrap(), 5); // a tree
        assert_eq!(*counts.last().unwrap(), 15); // K6
    }

    #[test]
    fn run_on_preserves_order_and_uses_scratch() {
        struct TotalDistance;
        impl Analysis for TotalDistance {
            type Output = Option<u64>;
            fn classify(&self, g: &Graph, scratch: &mut WorkerScratch) -> Option<u64> {
                g.total_distance_with(&mut scratch.bfs)
            }
        }
        let graphs = vec![
            Graph::complete(4),
            Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap(),
            Graph::empty(3),
        ];
        let engine = AnalysisEngine::new(2);
        let totals = engine.run_on(&graphs, &TotalDistance);
        assert_eq!(totals, vec![Some(12), Some(20), None]);
    }

    #[test]
    fn map_over_non_graph_items() {
        let engine = AnalysisEngine::new(3);
        let items: Vec<usize> = (3..10).collect();
        let orders = engine.map(&items, |&n, s| {
            let g = Graph::complete(n);
            g.total_distance_with(&mut s.bfs).unwrap()
        });
        let expected: Vec<u64> = (3..10).map(|n| (n * (n - 1)) as u64).collect();
        assert_eq!(orders, expected);
    }

    #[test]
    fn engine_thread_floor() {
        assert_eq!(AnalysisEngine::new(0).threads(), 1);
        assert!(AnalysisEngine::with_default_threads().threads() >= 1);
    }
}
