//! The shared classify-every-graph analysis pipeline.
//!
//! Every empirical product of the paper — the Figure 2/3 sweeps, the
//! Proposition 4 bound scan, the Lemma 6 cycle table, the Figure 1
//! gallery — is an instance of the same loop: *enumerate a family of
//! inputs, classify each one independently with exact equilibrium
//! machinery, aggregate*. Before this crate each `bnf-empirics` module
//! re-implemented that loop with its own threading and allocation
//! pattern; now they are thin [`Analysis`] job definitions executed by
//! one [`AnalysisEngine`].
//!
//! The engine fuses three concerns the jobs would otherwise duplicate:
//!
//! * **Enumeration** — [`AnalysisEngine::run_connected`] drives the
//!   connected-topology catalogue from `bnf-enumerate` straight into
//!   classification, and [`AnalysisEngine::run_connected_streaming`]
//!   does the same without ever materializing the graph list:
//!   `bnf-stream` producer workers run the canonical-construction
//!   pruned augmentation (each isomorphism class emitted exactly once,
//!   no dedup set at all) and feed canonical children through a
//!   bounded queue into the classification pool — this is what unlocks
//!   `n = 9/10` sweeps in CI-class memory and CPU.
//! * **Work-stealing execution** — a chunked atomic-counter scheduler
//!   over [`std::thread::scope`] workers (no external thread-pool
//!   dependency), promoted out of the old `empirics::parallel`. At
//!   paper scale the same idea moves up a level: the in-process
//!   **orchestrator**
//!   ([`AnalysisEngine::run_connected_streaming_keyed_orchestrated`])
//!   builds the level-`n − 1` parent frontier once, oversplits it into
//!   ≈ [`DEFAULT_OVERSPLIT`]× more ranges than threads, and lets
//!   workers steal whole ranges while a single writer streams
//!   completed [`RangeSegment`]s to the caller — replacing the
//!   16-invocation multi-process shard workflow with one command and
//!   no skew cliff.
//! * **Per-worker scratch reuse** — each worker owns one
//!   [`WorkerScratch`] for its whole lifetime, so the BFS/distance hot
//!   path runs allocation-free instead of re-allocating frontier
//!   buffers per graph (see `bnf_graph::BfsScratch`).
//!
//! # Examples
//!
//! ```
//! use bnf_engine::{Analysis, AnalysisEngine, WorkerScratch};
//! use bnf_graph::Graph;
//!
//! /// Classify each connected topology by (edges, total distance).
//! struct Census;
//! impl Analysis for Census {
//!     type Output = (usize, u64);
//!     fn classify(&self, g: &Graph, scratch: &mut WorkerScratch) -> Self::Output {
//!         let d = g
//!             .total_distance_with(&mut scratch.bfs)
//!             .expect("connected enumeration");
//!         (g.edge_count(), d)
//!     }
//! }
//!
//! let engine = AnalysisEngine::new(2);
//! let records = engine.run_connected(5, &Census);
//! assert_eq!(records.len(), 21); // connected graphs on 5 vertices
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod executor;
mod orchestrator;
mod pipeline;
mod scratch;

pub use executor::{default_threads, parallel_map, parallel_map_with};
pub use orchestrator::{
    auto_range_count, OrchestratorStats, RangeSegment, ResumePlan, DEFAULT_OVERSPLIT,
};
pub use pipeline::{Analysis, AnalysisEngine};
pub use scratch::WorkerScratch;
