//! The work-stealing executor: scoped std threads pulling index chunks
//! off a shared atomic counter.
//!
//! Classification workloads are embarrassingly parallel but uneven (a
//! dense graph's UCG orientation solve costs orders of magnitude more
//! than a tree's window scan), so static partitioning stalls; dynamic
//! chunk stealing keeps every worker busy until the items run out.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on `threads` workers, handing each worker a
/// private scratch value built once by `init`, and preserving input
/// order in the output.
///
/// # Panics
///
/// Propagates panics from `f` (the scope join resumes the unwind).
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut scratch = init();
        return items.iter().map(|t| f(t, &mut scratch)).collect();
    }
    // Chunked stealing: big enough to amortize the atomic + lock, small
    // enough that one expensive tail item cannot strand a whole stripe.
    let chunk = (items.len() / (threads * 8)).clamp(1, 64);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = init();
                let mut local: Vec<(usize, R)> = Vec::with_capacity(chunk);
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    local.extend((start..end).map(|i| (i, f(&items[i], &mut scratch))));
                    results
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .append(&mut local);
                }
            });
        }
    });
    let mut pairs = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Applies `f` to every item on `threads` worker threads, preserving
/// input order in the output. Scratch-free convenience over
/// [`parallel_map_with`].
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, threads, || (), |t, ()| f(t))
}

/// A reasonable default worker count for this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u8> = Vec::new();
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5u32];
        assert_eq!(parallel_map(&items, 64, |&x| x * x), vec![25]);
    }

    #[test]
    fn scratch_is_per_worker_and_reused() {
        // Each worker's scratch counts the items it processed; the inits
        // must not exceed the worker count and the counts must cover all
        // items exactly once.
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let counts = parallel_map_with(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |&i, seen| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert!(inits.load(Ordering::SeqCst) <= 4);
        assert_eq!(counts.len(), 500);
        // Some worker must have classified more than one item, i.e. the
        // scratch really is reused across items rather than rebuilt.
        assert!(counts.iter().any(|&(_, seen)| seen > 1));
        for (k, &(i, _)) in counts.iter().enumerate() {
            assert_eq!(i, k, "order must match the input");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                assert!(x != 37, "boom");
                x
            })
        });
        assert!(caught.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |&x| {
            if x % 16 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }
}
