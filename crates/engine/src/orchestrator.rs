//! The in-process parallel shard orchestrator: one frontier build,
//! work-stolen parent ranges, one streaming merge.
//!
//! The multi-process sharding workflow (PR 5) runs `m` shell
//! invocations of `--shard i/m`, each rebuilding the level-`n − 1`
//! parent frontier (`m`× redundant work) and each stuck with its static
//! range however skewed the emission mass is — at `n = 10`, shard 0/16
//! holds 2.24 M of the 11.7 M records. This module runs the same
//! partition *inside one process*: [`bnf_stream::ParentFrontier`] is
//! built **once**, oversplit into many more ranges than worker threads
//! (default [`DEFAULT_OVERSPLIT`]× — e.g. 256 ranges on 16 threads at
//! `n = 10`), and workers steal ranges off an atomic counter, so a
//! heavy sparse-parent range simply occupies one worker while the rest
//! drain the tail — no skew cliff, no operator-tuned split.
//!
//! Each worker fuses producer and classifier: it streams its stolen
//! range serially ([`bnf_stream::ParentFrontier::stream_range`]),
//! classifies inline with its own [`WorkerScratch`], tag-sorts the
//! segment, and hands it to a single writer — the calling thread —
//! through a [`BoundedQueue`]. The writer surfaces every completed
//! segment to the caller's `on_segment` callback (where `bnf-empirics`
//! appends records and per-range shard provenance into one
//! `ClassificationAtlas`, the in-process analogue of
//! `merge_segments`), then merges all segments and re-sorts by the
//! engine's `(edge count, leading canonical word)` tag, so the final
//! output order — and therefore every downstream float summation — is
//! byte-identical to the unsharded runners.
//!
//! Failure behaves like the streaming pipeline: a panic in any range
//! (or in the writer callback) closes the queue, which unblocks every
//! other participant, and propagates to the caller once the scope
//! joins — segments already written stay (the atlas is append-only and
//! resumable), but control never reaches coverage declaration, so a
//! poisoned run is visibly incomplete rather than silently short.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use bnf_stream::{BoundedQueue, ParentFrontier, PruneCounters, ShardSpec, StreamStats};

use crate::pipeline::{assert_sort_tag_exact, Analysis};
use crate::scratch::WorkerScratch;

/// Ranges cut per worker thread when the caller asks for the automatic
/// split (`--shards auto`): enough oversplit that one emission-heavy
/// range costs at most ≈ 1/16 of a thread's share of the sweep, while
/// keeping per-range overhead (segment hand-off, shard provenance)
/// negligible.
pub const DEFAULT_OVERSPLIT: usize = 16;

/// The automatic range count for a worker-thread budget:
/// `threads × `[`DEFAULT_OVERSPLIT`] (at least 1).
pub fn auto_range_count(threads: usize) -> usize {
    threads.max(1).saturating_mul(DEFAULT_OVERSPLIT)
}

/// A resumed orchestrated run's partition, reconstructed from the shard
/// metadata a prior (interrupted) run persisted: how many ranges the
/// frontier was cut into, which of them already completed durably, and
/// the frontier length the stored partition was cut from — asserted
/// against the rebuilt frontier before any range runs, so metadata from
/// an incompatible build can never silently skip the wrong parents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumePlan {
    /// Total ranges in the partition (the stored `shard_count`).
    pub ranges: usize,
    /// Sorted, deduplicated indices of ranges already completed — these
    /// are skipped, never re-enumerated.
    pub completed: Vec<usize>,
    /// Parent-frontier length the stored partition was cut from.
    pub frontier_len: u64,
}

impl ResumePlan {
    /// Indices this run still has to execute.
    pub fn missing(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.ranges).filter(|i| self.completed.binary_search(i).is_err())
    }
}

/// One completed parent range, surfaced to the orchestrator's writer
/// callback in completion order (not index order — ranges finish when
/// they finish).
///
/// `records` is already tag-sorted into the engine's deterministic
/// `(edge count, canonical key)` order *within the range*, exactly as a
/// `--shard` process would have written its segment file, so appending
/// segments as they arrive reproduces `merge_segments` semantics
/// in-process.
#[derive(Debug)]
pub struct RangeSegment<'a, T> {
    /// Which range of the partition this is (`0..ranges`).
    pub index: usize,
    /// Total ranges in the partition.
    pub ranges: usize,
    /// Parents in the shared frontier (identical for every segment).
    pub frontier_len: u64,
    /// Pruning counters of the single frontier build — identical for
    /// every segment of the run; provenance writers stamp it per range
    /// so `ShardMeta::merged_counters` can count it exactly once.
    pub frontier_prune: PruneCounters,
    /// First parent index owned by this range.
    pub parent_lo: u64,
    /// One past the last parent index owned by this range.
    pub parent_hi: u64,
    /// Final-level graphs emitted (= `records.len()`).
    pub emitted: u64,
    /// Wall-clock the worker spent producing + classifying this range.
    pub elapsed_ms: u64,
    /// Final-level pruning counters restricted to this range.
    pub final_prune: PruneCounters,
    /// The range's classified records, tag-sorted.
    pub records: &'a [T],
}

/// What an orchestrated run did: the unsharded-equivalent
/// [`StreamStats`] totals plus the orchestration shape.
///
/// `stats` is constructed to equal the [`StreamStats`] of an unsharded
/// `stream_connected` run *exactly* — frontier level sizes from the
/// single build, final level summed over ranges, and pruning counters
/// as the one frontier share plus the summed per-range final shares —
/// which is what makes `candidates_per_survivor` and the counter
/// diagnostics comparable across the unsharded, multi-process, and
/// orchestrated paths.
#[derive(Debug, Clone)]
pub struct OrchestratorStats {
    /// Unsharded-equivalent per-level sizes and pruning counters.
    pub stats: StreamStats,
    /// Parents in the shared level-`n − 1` frontier.
    pub frontier_len: u64,
    /// Pruning counters of the frontier build (counted once).
    pub frontier_prune: PruneCounters,
    /// Summed final-level pruning counters across all ranges.
    pub final_prune: PruneCounters,
    /// How many ranges the frontier was split into.
    pub ranges: usize,
    /// Worker threads that stole those ranges.
    pub threads: usize,
}

impl OrchestratorStats {
    /// Final-level graphs emitted across the whole partition.
    pub fn emitted(&self) -> u64 {
        self.stats.emitted()
    }
}

/// One completed range in flight from a worker to the writer. Tags
/// (`(edge count, leading canonical word)`) travel alongside the
/// records so the writer can fold every segment into the global
/// tag-sorted output without re-deriving keys.
struct Segment<T> {
    index: usize,
    lo: usize,
    hi: usize,
    emitted: u64,
    elapsed_ms: u64,
    final_prune: PruneCounters,
    /// Sort tags aligned index-for-index with `records`.
    tags: Vec<(usize, u64)>,
    records: Vec<T>,
}

/// Closes the segment queue when a worker leaves: immediately if the
/// worker is unwinding (cancelling the run so neither the writer nor a
/// sibling blocked on a full queue can deadlock), otherwise only when
/// this was the last live worker (a per-worker unconditional close
/// would starve the siblings still producing).
struct WorkerExit<'q, T> {
    queue: &'q BoundedQueue<Segment<T>>,
    live: &'q AtomicUsize,
    clean: bool,
}

impl<T> Drop for WorkerExit<'_, T> {
    fn drop(&mut self) {
        if !self.clean || self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.queue.close();
        }
    }
}

/// The orchestrated run body behind
/// [`crate::AnalysisEngine::run_connected_streaming_keyed_orchestrated`].
pub(crate) fn run_orchestrated<A, W>(
    threads: usize,
    n: usize,
    ranges: Option<usize>,
    job: &A,
    on_segment: W,
) -> (Vec<A::Output>, OrchestratorStats)
where
    A: Analysis,
    W: FnMut(RangeSegment<'_, A::Output>),
{
    run_orchestrated_with_plan(threads, n, ranges, None, job, on_segment)
}

/// [`run_orchestrated`] with an optional [`ResumePlan`]: ranges listed
/// as completed are skipped outright — their parents are never
/// re-streamed — and only the missing ranges reach `on_segment`. The
/// returned output and [`OrchestratorStats`] cover the *executed*
/// ranges only (a resumed run's caller replays the full catalogue from
/// its store once coverage closes, so a partial merge is never used as
/// figure output).
pub(crate) fn run_orchestrated_with_plan<A, W>(
    threads: usize,
    n: usize,
    ranges: Option<usize>,
    plan: Option<&ResumePlan>,
    job: &A,
    mut on_segment: W,
) -> (Vec<A::Output>, OrchestratorStats)
where
    A: Analysis,
    W: FnMut(RangeSegment<'_, A::Output>),
{
    assert_sort_tag_exact(n);
    let threads = threads.max(1);
    let ranges = match plan {
        Some(plan) => plan.ranges.max(1),
        None => ranges.unwrap_or_else(|| auto_range_count(threads)).max(1),
    };
    let completed: &[usize] = plan.map_or(&[], |p| &p.completed);
    debug_assert!(completed.windows(2).all(|w| w[0] < w[1]), "plan not sorted");
    // The one frontier build of the whole run (ParentFrontier::build
    // rejects n < 2 — trivial orders have no frontier to orchestrate).
    let frontier = ParentFrontier::build(n, threads);
    let frontier_len = frontier.len() as u64;
    if let Some(plan) = plan {
        // Refuse before any work runs: a stored partition cut from a
        // different frontier would skip the wrong parent ranges.
        assert_eq!(
            plan.frontier_len, frontier_len,
            "resume plan was cut from a different n={n} frontier \
             (stored {}, rebuilt {frontier_len}) — incompatible build?",
            plan.frontier_len,
        );
        assert!(
            plan.completed.last().is_none_or(|&i| i < ranges),
            "resume plan lists completed range beyond the partition"
        );
    }
    let frontier_prune = frontier.frontier_prune();

    let queue: BoundedQueue<Segment<A::Output>> = BoundedQueue::new(threads * 2);
    let next = AtomicUsize::new(0);
    let live = AtomicUsize::new(threads);

    let mut merged: Vec<((usize, u64), A::Output)> = Vec::new();
    let mut emitted_total = 0u64;
    let mut final_prune = PruneCounters::default();
    let mut segments = 0usize;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut exit = WorkerExit {
                    queue: &queue,
                    live: &live,
                    clean: false,
                };
                let mut scratch = WorkerScratch::new();
                let mut stolen = 0u64;
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= ranges {
                        break;
                    }
                    if completed.binary_search(&index).is_ok() {
                        continue; // durably completed by a prior run
                    }
                    stolen += 1;
                    let (lo, hi) = ShardSpec::new(index, ranges).range(frontier.len());
                    let started = Instant::now();
                    let mut tagged: Vec<((usize, u64), A::Output)> = Vec::new();
                    let range = frontier.stream_range(lo, hi, |graph, key| {
                        let out = job.classify_keyed(&graph.to_graph6(), &graph, &mut scratch);
                        tagged.push(((graph.edge_count(), key.prefix_word()), out));
                    });
                    tagged.sort_by_key(|t| t.0);
                    let (tags, records): (Vec<_>, Vec<_>) = tagged.into_iter().unzip();
                    let segment = Segment {
                        index,
                        lo,
                        hi,
                        emitted: range.emitted,
                        elapsed_ms: started.elapsed().as_millis() as u64,
                        final_prune: range.prune,
                        tags,
                        records,
                    };
                    // A failed push means some participant panicked and
                    // closed the queue — stop stealing instead of
                    // enumerating for nobody.
                    if !queue.push(segment) {
                        break;
                    }
                }
                // The steal-balance histogram: a lopsided distribution
                // means the oversplit is too coarse for this frontier.
                bnf_obs::Recorder::global().record_hist("ranges_per_worker", stolen);
                exit.clean = true;
            });
        }
        // The calling thread is the single writer. Its guard closes the
        // queue if `on_segment` panics, so no worker can stay blocked on
        // a full queue while the scope waits to join it.
        let _guard = queue.close_guard();
        while let Some(segment) = queue.pop() {
            on_segment(RangeSegment {
                index: segment.index,
                ranges,
                frontier_len,
                frontier_prune,
                parent_lo: segment.lo as u64,
                parent_hi: segment.hi as u64,
                emitted: segment.emitted,
                elapsed_ms: segment.elapsed_ms,
                final_prune: segment.final_prune,
                records: &segment.records,
            });
            let recorder = bnf_obs::Recorder::global();
            recorder.record_hist("range_wall_ms", segment.elapsed_ms);
            recorder.record_hist("range_emitted", segment.emitted);
            emitted_total += segment.emitted;
            final_prune.merge(&segment.final_prune);
            segments += 1;
            merged.extend(segment.tags.into_iter().zip(segment.records));
        }
    });

    debug_assert_eq!(
        segments,
        ranges - completed.len(),
        "partition did not close"
    );
    let _ = segments;
    bnf_obs::Recorder::global().record_max("writer_backlog_high_water", queue.high_water() as u64);
    bnf_obs::Recorder::global().time("sort", || merged.sort_by_key(|t| t.0));
    let mut stats = StreamStats {
        level_sizes: frontier.level_sizes().to_vec(),
        prune: frontier_prune,
    };
    stats.level_sizes.push(emitted_total);
    stats.prune.merge(&final_prune);
    (
        merged.into_iter().map(|(_, out)| out).collect(),
        OrchestratorStats {
            stats,
            frontier_len,
            frontier_prune,
            final_prune,
            ranges,
            threads,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisEngine;
    use bnf_graph::Graph;

    struct Tagged;
    impl Analysis for Tagged {
        type Output = (usize, String);
        fn classify(&self, g: &Graph, _s: &mut WorkerScratch) -> Self::Output {
            (g.edge_count(), "unkeyed".into())
        }
        fn classify_keyed(&self, key: &str, g: &Graph, _s: &mut WorkerScratch) -> Self::Output {
            (g.edge_count(), key.to_string())
        }
    }

    #[test]
    fn orchestrated_output_is_byte_identical_to_streaming_keyed() {
        // Any thread budget, any oversplit — including one range total
        // and far more ranges than parents — must reproduce the
        // unsharded keyed streaming run exactly, order included.
        for (threads, ranges) in [
            (1usize, None),
            (3, None),
            (2, Some(1)),
            (3, Some(7)),
            (2, Some(1000)),
        ] {
            let engine = AnalysisEngine::new(threads);
            let (out, stats) =
                engine.run_connected_streaming_keyed_orchestrated(7, ranges, &Tagged, |_| {});
            let whole = engine.run_connected_streaming_keyed(7, &Tagged);
            assert_eq!(out, whole, "threads={threads} ranges={ranges:?}");
            assert_eq!(stats.emitted(), 853, "threads={threads} ranges={ranges:?}");
            assert_eq!(
                stats.ranges,
                ranges.unwrap_or_else(|| auto_range_count(threads))
            );
        }
    }

    #[test]
    fn orchestrated_counters_equal_unsharded_exactly() {
        // The satellite regression: frontier share counted once plus
        // summed range shares == the unsharded StreamStats, exactly.
        let engine = AnalysisEngine::new(3);
        let (_, unsharded) = engine.run_connected_streaming_keyed_with_stats(7, &Tagged);
        let (_, orch) =
            engine.run_connected_streaming_keyed_orchestrated(7, Some(11), &Tagged, |_| {});
        assert_eq!(orch.stats.level_sizes, unsharded.level_sizes);
        assert_eq!(orch.stats.prune, unsharded.prune);
        assert_eq!(
            orch.frontier_len,
            *unsharded.level_sizes.iter().rev().nth(1).unwrap()
        );
        let mut recombined = orch.frontier_prune;
        recombined.merge(&orch.final_prune);
        assert_eq!(recombined, unsharded.prune);
    }

    #[test]
    fn segments_partition_the_frontier_and_carry_sorted_records() {
        let engine = AnalysisEngine::new(2);
        let mut segs: Vec<(usize, u64, u64, u64)> = Vec::new();
        let mut shares: Vec<PruneCounters> = Vec::new();
        let mut frontier_len = 0u64;
        let (out, stats) =
            engine.run_connected_streaming_keyed_orchestrated(6, Some(5), &Tagged, |seg| {
                assert_eq!(seg.ranges, 5);
                assert_eq!(seg.emitted as usize, seg.records.len());
                assert!(
                    seg.records.windows(2).all(|w| w[0].0 <= w[1].0),
                    "segment {} not tag-sorted",
                    seg.index
                );
                frontier_len = seg.frontier_len;
                shares.push(seg.frontier_prune);
                segs.push((seg.index, seg.parent_lo, seg.parent_hi, seg.emitted));
            });
        assert_eq!(out.len(), 112); // A001349(6)
        assert_eq!(segs.len(), 5);
        // One frontier build: every segment carries the identical share.
        assert!(shares.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(shares[0], stats.frontier_prune);
        // The ranges tile [0, frontier_len) exactly.
        segs.sort_unstable();
        assert_eq!(segs[0].1, 0);
        assert!(segs.windows(2).all(|w| w[0].2 == w[1].1));
        assert_eq!(segs.last().unwrap().2, frontier_len);
        assert_eq!(segs.iter().map(|s| s.3).sum::<u64>(), stats.emitted());
    }

    #[test]
    fn panic_in_one_range_propagates_without_deadlock() {
        struct Boom;
        impl Analysis for Boom {
            type Output = ();
            fn classify(&self, g: &Graph, _s: &mut WorkerScratch) {
                assert!(g.edge_count() < 9, "boom"); // K5 trips this
            }
        }
        let caught = std::panic::catch_unwind(|| {
            AnalysisEngine::new(2).run_connected_streaming_keyed_orchestrated(
                5,
                Some(8),
                &Boom,
                |_| {},
            );
        });
        assert!(caught.is_err(), "range panic must reach the caller");
    }

    #[test]
    fn panic_in_writer_callback_propagates_without_deadlock() {
        let caught = std::panic::catch_unwind(|| {
            AnalysisEngine::new(2).run_connected_streaming_keyed_orchestrated(
                6,
                Some(4),
                &Tagged,
                |seg| assert_ne!(seg.index, 0, "writer boom"),
            );
        });
        assert!(caught.is_err(), "writer panic must reach the caller");
    }

    #[test]
    fn resumed_run_skips_completed_ranges_and_covers_the_rest() {
        let engine = AnalysisEngine::new(2);
        // A cold partition to learn the ground truth from.
        let mut cold: Vec<(usize, u64, u64, u64)> = Vec::new();
        let mut frontier_len = 0u64;
        engine.run_connected_streaming_keyed_orchestrated(6, Some(6), &Tagged, |seg| {
            frontier_len = seg.frontier_len;
            cold.push((seg.index, seg.parent_lo, seg.parent_hi, seg.emitted));
        });
        cold.sort_unstable();

        // Resume with ranges {0, 2, 5} already done: only {1, 3, 4} may
        // execute, with byte-identical per-range boundaries.
        let plan = ResumePlan {
            ranges: 6,
            completed: vec![0, 2, 5],
            frontier_len,
        };
        assert_eq!(plan.missing().collect::<Vec<_>>(), vec![1, 3, 4]);
        let mut warm: Vec<(usize, u64, u64, u64)> = Vec::new();
        let (out, stats) =
            engine.run_connected_streaming_keyed_orchestrated_resumed(6, &plan, &Tagged, |seg| {
                assert_eq!(seg.ranges, 6);
                warm.push((seg.index, seg.parent_lo, seg.parent_hi, seg.emitted));
            });
        warm.sort_unstable();
        let expected: Vec<_> = cold
            .iter()
            .filter(|s| plan.completed.binary_search(&s.0).is_err())
            .copied()
            .collect();
        assert_eq!(warm, expected, "resumed ranges must tile identically");
        assert_eq!(stats.ranges, 6);
        assert_eq!(
            stats.emitted(),
            expected.iter().map(|s| s.3).sum::<u64>(),
            "resumed stats cover executed ranges only"
        );
        assert_eq!(out.len() as u64, stats.emitted());

        // An all-complete plan executes nothing at all.
        let full = ResumePlan {
            ranges: 6,
            completed: (0..6).collect(),
            frontier_len,
        };
        let (out, stats) =
            engine.run_connected_streaming_keyed_orchestrated_resumed(6, &full, &Tagged, |seg| {
                panic!("range {} re-executed despite full coverage", seg.index)
            });
        assert!(out.is_empty());
        assert_eq!(stats.emitted(), 0);
    }

    #[test]
    fn resume_plan_from_wrong_frontier_is_refused() {
        let plan = ResumePlan {
            ranges: 4,
            completed: vec![1],
            frontier_len: 999, // level-5 frontier has 112 parents, not 999
        };
        let caught = std::panic::catch_unwind(|| {
            AnalysisEngine::new(1).run_connected_streaming_keyed_orchestrated_resumed(
                6,
                &plan,
                &Tagged,
                |_| {},
            )
        });
        assert!(caught.is_err(), "mismatched frontier_len must refuse");
    }

    #[test]
    fn trivial_orders_are_rejected() {
        for n in [0usize, 1] {
            let caught = std::panic::catch_unwind(|| {
                AnalysisEngine::new(1).run_connected_streaming_keyed_orchestrated(
                    n,
                    None,
                    &Tagged,
                    |_| {},
                )
            });
            assert!(caught.is_err(), "n={n} has no frontier to orchestrate");
        }
    }
}
