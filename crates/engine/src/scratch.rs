//! Per-worker scratch state threaded through every [`crate::Analysis`]
//! job.

use bnf_graph::BfsScratch;

/// Reusable buffers owned by one worker thread for its whole lifetime.
///
/// The classification hot path is dominated by BFS distance sums under
/// single-edge mutations; allocating fresh frontier buffers per graph
/// (as the pre-engine sweep did via `BfsScratch::new()` inside every
/// helper) costs three `Vec` allocations per BFS call site. A worker
/// instead reuses this scratch across all the graphs it classifies.
///
/// The struct is deliberately open (public fields) so jobs can thread
/// the pieces they need into `bnf-core`'s `*_with` entry points; new
/// buffers for future job kinds (distance matrices, orientation tables)
/// should be added here rather than allocated per item.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// BFS frontier/seen/next bitset rows, grown on first use.
    pub bfs: BfsScratch,
}

impl WorkerScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
