//! Exhaustive enumeration of non-isomorphic graphs, connected graphs and
//! free trees.
//!
//! The paper's empirical study (Section 5) computes *all* pairwise-stable
//! graphs of the bilateral connection game and all Nash graphs of the
//! unilateral game "by enumeration of all connected topologies" on a fixed
//! number of vertices. This crate provides that enumeration.
//!
//! # Method
//!
//! Vertex augmentation with canonical-form deduplication: every
//! (connected) graph on `n` vertices arises from some (connected) graph on
//! `n - 1` vertices by adding one vertex with a (non-empty) neighbour set —
//! for the connected case because every connected graph has at least two
//! non-cut vertices, for trees because every tree has a leaf. Candidates
//! are canonicalized with [`Graph::canonical_form_and_key`] (one
//! individualization–refinement search yields both the form and the
//! dedup key) and deduplicated in a hash set.
//!
//! Counts are cross-checked against OEIS A000088 (graphs), A001349
//! (connected graphs) and A000055 (free trees) in the test suite.
//!
//! # Scaling
//!
//! The list-returning functions here materialize every graph of the
//! final level — fine through `n = 9`; the result list itself is what
//! grows. The heavy lifting lives in the `bnf-stream` crate: its
//! producer runs the vertex augmentation level by level with
//! **canonical-construction pruning** (`bnf_stream::prune`) — one
//! neighbour mask per `Aut(parent)`-orbit, cheap degree/connectivity
//! rejection before any canonical search, and a McKay-style accept rule
//! that makes every emission unique without any dedup set at all —
//! and hands each final-level graph to the caller the moment it is
//! accepted. [`connected_graphs`] and [`for_each_connected_graph`]
//! delegate to that producer; classification workloads should go one
//! seam higher (`bnf_engine::AnalysisEngine::run_connected_streaming`).
//!
//! # Examples
//!
//! ```
//! use bnf_enumerate::connected_graphs;
//!
//! // There are 6 connected graphs on 4 vertices.
//! assert_eq!(connected_graphs(4).len(), 6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashSet;

use bnf_graph::{CanonKey, Graph, VertexSet};

/// Known counts of simple graphs on `n` unlabelled vertices (OEIS A000088).
pub const GRAPH_COUNTS: [u64; 10] = [1, 1, 2, 4, 11, 34, 156, 1044, 12346, 274668];

/// Known counts of connected graphs on `n` unlabelled vertices (OEIS
/// A001349).
pub const CONNECTED_GRAPH_COUNTS: [u64; 10] = [1, 1, 1, 2, 6, 21, 112, 853, 11117, 261080];

/// Known counts of free trees on `n` vertices (OEIS A000055).
pub const FREE_TREE_COUNTS: [u64; 11] = [1, 1, 1, 1, 2, 3, 6, 11, 23, 47, 106];

/// Extends each parent by one vertex over the given neighbour-mask range,
/// deduplicating canonically.
fn augment<F>(parents: &[Graph], k: usize, masks: F) -> Vec<Graph>
where
    F: Fn() -> std::ops::Range<u64>,
{
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for parent in parents {
        for mask in masks() {
            let nbrs = VertexSet::from_mask(k, mask);
            // One fused search per candidate; form-then-key would run
            // the canonical labelling twice.
            let (child, key) = parent.with_extra_vertex(&nbrs).canonical_form_and_key();
            // Duplicates (the majority) pay a lookup, never a clone.
            if !seen.contains(&key) {
                seen.insert(key.clone());
                out.push((child, key));
            }
        }
    }
    sort_deterministically(out)
}

/// Sorts by (edge count, canonical key) — the key each graph was
/// deduplicated under, kept alongside so the sort never re-runs the
/// canonical search — and strips the keys.
fn sort_deterministically(mut tagged: Vec<(Graph, CanonKey)>) -> Vec<Graph> {
    tagged.sort_by(|a, b| (a.0.edge_count(), &a.1).cmp(&(b.0.edge_count(), &b.1)));
    tagged.into_iter().map(|(g, _)| g).collect()
}

/// All non-isomorphic simple graphs on `n` vertices, in canonical form,
/// sorted by edge count then canonical key.
///
/// Runtime and memory grow super-exponentially; intended for `n <= 9`.
///
/// # Panics
///
/// Panics if `n > 10` (the dedup set would not fit in memory).
pub fn all_graphs(n: usize) -> Vec<Graph> {
    assert!(
        n <= 10,
        "exhaustive enumeration beyond n=10 is not supported"
    );
    if n == 0 {
        return vec![Graph::empty(0)];
    }
    let mut cur = vec![Graph::empty(1)];
    for k in 1..n {
        cur = augment(&cur, k, || 0..(1u64 << k));
    }
    cur
}

/// All non-isomorphic *connected* graphs on `n` vertices, in canonical
/// form, sorted by edge count then canonical key.
///
/// Since the canonical-construction pruning rewrite this collects from
/// `bnf_stream::for_each_connected` (McKay-style accept rule, no dedup
/// set, canonical search only on survivors); the output set and order
/// are identical to the pre-pruning generate-all-and-dedup path, which
/// survives as [`connected_graphs_unpruned`] for the equivalence tests.
///
/// # Panics
///
/// Panics if `n > 10`.
pub fn connected_graphs(n: usize) -> Vec<Graph> {
    let mut tagged: Vec<(Graph, CanonKey)> = Vec::new();
    bnf_stream::for_each_connected(n, |g, key| tagged.push((g, key)));
    let out = sort_deterministically(tagged);
    debug_assert!(n == 0 || out.iter().all(Graph::is_connected));
    out
}

/// The pre-pruning reference implementation of [`connected_graphs`]:
/// canonicalizes every augmentation candidate and deduplicates in a
/// hash set. Exists so tests can certify the pruned path produces the
/// identical catalogue; new code should call [`connected_graphs`].
///
/// # Panics
///
/// Panics if `n > 10`.
pub fn connected_graphs_unpruned(n: usize) -> Vec<Graph> {
    let mut tagged: Vec<(Graph, CanonKey)> = Vec::new();
    bnf_stream::for_each_connected_unpruned(n, |g, key| tagged.push((g, key)));
    sort_deterministically(tagged)
}

/// All non-isomorphic free trees on `n` vertices, in canonical form.
///
/// # Panics
///
/// Panics if `n > 16`.
pub fn free_trees(n: usize) -> Vec<Graph> {
    assert!(n <= 16, "tree enumeration beyond n=16 is not supported");
    if n == 0 {
        return vec![Graph::empty(0)];
    }
    let mut cur = vec![Graph::empty(1)];
    for k in 1..n {
        // Attach the new vertex as a leaf to each possible anchor.
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for parent in &cur {
            for anchor in 0..k {
                // Attach as a leaf of `anchor`: a one-bit neighbour set.
                let nbrs = VertexSet::from_mask(k, 1u64 << anchor);
                let (child, key) = parent.with_extra_vertex(&nbrs).canonical_form_and_key();
                if !seen.contains(&key) {
                    seen.insert(key.clone());
                    out.push((child, key));
                }
            }
        }
        cur = sort_deterministically(out);
    }
    debug_assert!(cur.iter().all(Graph::is_tree));
    cur
}

/// Streaming variant of [`connected_graphs`]: invokes `visit` once per
/// non-isomorphic connected graph on `n` vertices (in canonical form,
/// unspecified order), without ever materializing the list.
///
/// # Memory contract
///
/// `O(largest single enumeration level)`: at any moment this holds one
/// level's parent frontier, the *next* frontier being built (for
/// intermediate levels), and one level's canonical-key dedup set —
/// never the final graph list. It delegates to
/// `bnf_stream::for_each_connected`; parallel classification workloads
/// should use `bnf_engine::AnalysisEngine::run_connected_streaming`,
/// which adds sharded dedup and bounded-channel hand-off on the same
/// producer.
///
/// # Panics
///
/// Panics if `n > 10`.
pub fn for_each_connected_graph<F: FnMut(&Graph)>(n: usize, mut visit: F) {
    bnf_stream::for_each_connected(n, |g, _key| visit(&g));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_counts_match_oeis_small() {
        for (n, &want) in GRAPH_COUNTS.iter().enumerate().take(8) {
            assert_eq!(
                all_graphs(n).len() as u64,
                want,
                "graph count mismatch at n={n}"
            );
        }
    }

    #[test]
    fn connected_counts_match_oeis_small() {
        for (n, &want) in CONNECTED_GRAPH_COUNTS.iter().enumerate().take(8) {
            assert_eq!(
                connected_graphs(n).len() as u64,
                want,
                "connected count mismatch at n={n}"
            );
        }
    }

    #[test]
    fn tree_counts_match_oeis() {
        for (n, &want) in FREE_TREE_COUNTS.iter().enumerate() {
            assert_eq!(
                free_trees(n).len() as u64,
                want,
                "tree count mismatch at n={n}"
            );
        }
    }

    #[test]
    fn connected_graphs_are_connected_and_distinct() {
        let gs = connected_graphs(6);
        assert!(gs.iter().all(Graph::is_connected));
        let keys: std::collections::HashSet<_> = gs.iter().map(Graph::canonical_key).collect();
        assert_eq!(keys.len(), gs.len());
    }

    #[test]
    fn all_graphs_include_disconnected() {
        let gs = all_graphs(4);
        assert!(gs.iter().any(|g| !g.is_connected()));
        assert!(gs.iter().any(|g| g.edge_count() == 0));
        assert!(gs.iter().any(|g| g.edge_count() == 6));
    }

    #[test]
    fn trees_are_trees() {
        let ts = free_trees(7);
        assert!(ts.iter().all(Graph::is_tree));
        // The path and the star are among them.
        assert!(ts
            .iter()
            .any(|t| t.degree_sequence() == vec![6, 1, 1, 1, 1, 1, 1]));
        assert!(ts
            .iter()
            .any(|t| t.degree_sequence() == vec![2, 2, 2, 2, 2, 1, 1]));
    }

    #[test]
    fn pruned_equals_unpruned_catalogue() {
        // Same graphs, same order — the canonical-construction pruning
        // must be invisible to every consumer of the catalogue.
        for n in 0..8 {
            assert_eq!(connected_graphs(n), connected_graphs_unpruned(n), "n={n}");
        }
    }

    #[test]
    fn deterministic_ordering() {
        let a = connected_graphs(5);
        let b = connected_graphs(5);
        assert_eq!(a, b);
        // Sorted by edge count first.
        assert!(a.windows(2).all(|w| w[0].edge_count() <= w[1].edge_count()));
    }

    #[test]
    fn trivial_orders() {
        assert_eq!(all_graphs(0).len(), 1);
        assert_eq!(connected_graphs(1).len(), 1);
        assert_eq!(free_trees(1).len(), 1);
        assert_eq!(free_trees(2).len(), 1);
    }
}
