//! Quickstart: build a network, ask the paper's questions about it.
//!
//! Run with: cargo run --release --example quickstart

use bilateral_formation::prelude::*;

fn main() {
    // Six agents form a ring network.
    let ring = bilateral_formation::atlas::cycle(6);
    println!("network: {ring:?}");

    // 1. When is the ring pairwise stable in the bilateral game?
    let window = stability_window(&ring).expect("stable for some link cost");
    println!("BCG pairwise-stability window: {window}");

    // 2. How inefficient is it at a stable link cost?
    let alpha = Ratio::from(4);
    assert!(window.contains(alpha));
    let rho = price_of_anarchy(&ring, GameKind::Bilateral, alpha);
    println!("price of anarchy at alpha = {alpha}: {rho:.4}");

    // 3. What does the efficient network look like there?
    let optimal = efficient_graph(GameKind::Bilateral, 6, alpha);
    println!(
        "efficient graph at alpha = {alpha}: {optimal:?} (social cost {})",
        optimal_social_cost(GameKind::Bilateral, 6, alpha)
    );

    // 4. Could selfish unilateral agents sustain the ring instead?
    let ucg = UcgAnalyzer::new(&ring).unwrap();
    println!(
        "UCG Nash-supportable anywhere? {} (footnote 5 of the paper: no, for n = 6)",
        !ucg.support_intervals().is_empty()
    );

    // 5. Equilibrium concepts agree (Proposition 1).
    assert_eq!(
        is_pairwise_stable(&ring, alpha),
        is_pairwise_nash(&ring, alpha)
    );
    println!("pairwise stable == pairwise Nash at alpha = {alpha} (Proposition 1)");
}
