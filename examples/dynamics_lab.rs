//! Equilibrium selection via dynamics: which stable networks does myopic
//! decentralized play actually reach? Runs pairwise dynamics (BCG) and
//! exact best-response dynamics (UCG) from empty and random seeds.
//!
//! Run with: cargo run --release --example dynamics_lab

use bilateral_formation::dynamics::{run_best_response_dynamics, run_pairwise_dynamics};
use bilateral_formation::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let n = 7;
    let trials = 200;
    for alpha in [
        Ratio::new(1, 2),
        Ratio::new(3, 2),
        Ratio::from(3),
        Ratio::from(8),
    ] {
        println!("== alpha = {alpha} ==");
        // BCG pairwise dynamics from the empty network.
        let mut outcomes: HashMap<String, usize> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(2005);
        for _ in 0..trials {
            let r = run_pairwise_dynamics(&Graph::empty(n), alpha, &mut rng, 100_000);
            assert!(r.converged);
            assert!(is_pairwise_stable(&r.graph, alpha));
            let key = r.graph.canonical_form().to_graph6();
            *outcomes.entry(key).or_default() += 1;
        }
        let mut sorted: Vec<_> = outcomes.into_iter().collect();
        sorted.sort_by_key(|a| std::cmp::Reverse(a.1));
        println!("  BCG pairwise dynamics from empty ({trials} runs):");
        for (g6, count) in sorted.iter().take(4) {
            let g = Graph::from_graph6(g6).expect("round trip");
            println!(
                "    {:>4}x m={:<2} PoA={:.4} [{g6}]",
                count,
                g.edge_count(),
                price_of_anarchy(&g, GameKind::Bilateral, alpha)
            );
        }
        if sorted.len() > 4 {
            println!(
                "    ... and {} more distinct stable topologies",
                sorted.len() - 4
            );
        }

        // UCG best-response dynamics from the empty profile.
        let mut rng = StdRng::seed_from_u64(99);
        let mut ucg_outcomes: HashMap<String, usize> = HashMap::new();
        for _ in 0..trials {
            let r = run_best_response_dynamics(&StrategyProfile::new(n), alpha, &mut rng, 500);
            assert!(r.converged);
            let key = r.graph.canonical_form().to_graph6();
            *ucg_outcomes.entry(key).or_default() += 1;
        }
        let mut sorted: Vec<_> = ucg_outcomes.into_iter().collect();
        sorted.sort_by_key(|a| std::cmp::Reverse(a.1));
        println!("  UCG best-response dynamics from empty ({trials} runs):");
        for (g6, count) in sorted.iter().take(4) {
            let g = Graph::from_graph6(g6).expect("round trip");
            println!(
                "    {:>4}x m={:<2} PoA={:.4} [{g6}]",
                count,
                g.edge_count(),
                price_of_anarchy(&g, GameKind::Unilateral, alpha)
            );
        }
        println!();
    }
}
