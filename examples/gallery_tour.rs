//! Figure 1 tour: rebuild each exhibited stable graph, verify its
//! certificates and exact stability window, then show the paper's
//! link-convexity contrast (and where exact computation disagrees).
//!
//! Run with: cargo run --release --example gallery_tour

use bilateral_formation::core::{is_link_convex, link_convexity_margin, stability_window};
use bilateral_formation::empirics::{extended_gallery, figure1_gallery};
use bilateral_formation::graph::moore_bound;

fn main() {
    println!("== Figure 1: the paper's pairwise-stable gallery ==\n");
    for e in figure1_gallery() {
        let w = e.window.expect("every Figure 1 graph is stable somewhere");
        println!(
            "{:<18} n={:<3} m={:<4} window={:<10} link-convex={}",
            e.name,
            e.graph.order(),
            e.graph.edge_count(),
            w.to_string(),
            e.link_convex
        );
        if let Some((n, k, l, m)) = e.srg {
            println!("    strongly regular ({n},{k},{l},{m})");
        }
    }

    println!("\n== Moore graphs attain the bound ==");
    let petersen = bilateral_formation::atlas::named::petersen();
    let hs = bilateral_formation::atlas::named::hoffman_singleton();
    println!(
        "Petersen order {} = moore_bound(3,2) = {}",
        petersen.order(),
        moore_bound(3, 2)
    );
    println!(
        "Hoffman–Singleton order {} = moore_bound(7,2) = {}",
        hs.order(),
        moore_bound(7, 2)
    );

    println!("\n== Section 4.1 link-convexity exhibits ==");
    for e in extended_gallery() {
        if e.name == "Desargues" || e.name == "Dodecahedron" {
            let (amax, dmin) = link_convexity_margin(&e.graph).expect("connected");
            println!(
                "{:<14} max addition saving = {amax}, min deletion penalty = {dmin}: link convex = {}",
                e.name,
                is_link_convex(&e.graph)
            );
        }
    }
    println!("(the paper claims Desargues is link convex; exact margins 10 vs 8 refute it —");
    println!(" its diameter 5 exceeds girth/2, outside the Lemma 7 argument's regime)");

    println!("\n== Stability windows are exact ==");
    let c12 = bilateral_formation::atlas::cycle(12);
    println!("C12: {}", stability_window(&c12).unwrap());
}
