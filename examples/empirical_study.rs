//! The Section 5 empirical study in miniature: enumerate every connected
//! topology on n vertices, classify equilibria of both games across link
//! costs, and print the Figure 2 / Figure 3 series.
//!
//! Run with: cargo run --release --example empirical_study -- [n]
//! (default n = 6; the paper used n = 10 — see DESIGN.md §4)

use bilateral_formation::empirics::{fmt_stat, render_table, SweepConfig, SweepResult};
use bilateral_formation::prelude::GameKind;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map_or(6, |v| v.parse().expect("usage: empirical_study [n]"));
    println!("classifying all connected topologies on n = {n} vertices...");
    let sweep = SweepResult::run(&SweepConfig::standard(n));
    println!("{} topologies classified\n", sweep.records.len());

    let bcg = sweep.stats(GameKind::Bilateral);
    let ucg = sweep.stats(GameKind::Unilateral);
    let rows: Vec<Vec<String>> = bcg
        .iter()
        .zip(&ucg)
        .map(|(b, u)| {
            vec![
                b.alpha.to_string(),
                b.count.to_string(),
                fmt_stat(b.mean_poa),
                fmt_stat(b.mean_links),
                u.count.to_string(),
                fmt_stat(u.mean_poa),
                fmt_stat(u.mean_links),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "alpha",
                "BCG#",
                "BCG PoA",
                "BCG links",
                "UCG#",
                "UCG PoA",
                "UCG links"
            ],
            &rows
        )
    );

    println!("equilibrium multiplicity (the driver of the Figure 2 hump):");
    for (alpha, bcg_count, ucg_count) in sweep.equilibrium_counts() {
        println!("  alpha = {alpha:>4}: BCG {bcg_count:>4} stable, UCG {ucg_count:>4} Nash");
    }
    let total: usize = sweep.conjecture_violations().iter().map(|&(_, c)| c).sum();
    println!("\nUCG-Nash-but-not-BCG-stable topologies across the grid: {total}");
    println!("(zero would confirm the paper's Section 4.3 conjecture; the theta graph");
    println!(" family refutes it from n = 6 — see bnf-core's conjecture_counterexample)");
}
