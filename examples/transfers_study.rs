//! Extension experiment (the paper's concluding future-work direction):
//! does allowing bilateral transfers mediate the price of anarchy?
//! Classifies every connected topology as pairwise stable with vs
//! without transfers and compares the equilibrium sets.
//!
//! Run with: cargo run --release --example transfers_study -- [n]

use bilateral_formation::empirics::{fmt_stat, render_table, SweepConfig, SweepResult};
use bilateral_formation::prelude::GameKind;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map_or(7, |v| v.parse().expect("usage: transfers_study [n]"));
    println!("classifying all connected topologies on n = {n} vertices...");
    let sweep = SweepResult::run(&SweepConfig::standard(n));
    let plain = sweep.stats(GameKind::Bilateral);
    let with = sweep.transfer_stats();
    let rows: Vec<Vec<String>> = plain
        .iter()
        .zip(&with)
        .map(|(p, t)| {
            vec![
                p.alpha.to_string(),
                p.count.to_string(),
                fmt_stat(p.mean_poa),
                fmt_stat(p.max_poa),
                t.count.to_string(),
                fmt_stat(t.mean_poa),
                fmt_stat(t.max_poa),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "alpha",
                "plain#",
                "avgPoA",
                "maxPoA",
                "transfer#",
                "avgPoA",
                "maxPoA"
            ],
            &rows
        )
    );
    println!("(PoA of the transfer-stable set uses the bilateral social cost; transfers");
    println!(" only move money between the pair, so the social optimum is unchanged)");
}
