//! Propositions 3 and 4 in action: walk the Moore/cage family up the
//! Ω(log α) lower bound, then scan the exhaustive stable set against the
//! O(min(√α, n/√α)) upper envelope.
//!
//! Run with: cargo run --release --example bounds_explorer

use bilateral_formation::core::prop4_envelope;
use bilateral_formation::empirics::{prop3_series, prop4_rows, SweepConfig, SweepResult};

fn main() {
    println!("== Proposition 3: PoA grows like log2(alpha) along the Moore family ==\n");
    println!(
        "{:<20} {:>4} {:>6} {:>10} {:>12} {:>12}",
        "graph", "n", "girth", "alpha_max", "log2(alpha)", "PoA"
    );
    for r in prop3_series() {
        println!(
            "{:<20} {:>4} {:>6} {:>10} {:>12.3} {:>12.4}",
            r.name,
            r.n,
            r.girth,
            r.alpha_top.to_string(),
            r.log2_alpha,
            r.poa
        );
    }

    println!("\n== Proposition 4: worst-case stable PoA vs the envelope (n = 7) ==\n");
    let sweep = SweepResult::run(&SweepConfig::standard(7));
    println!(
        "{:>6} {:>10} {:>10} {:>8}",
        "alpha", "max PoA", "envelope", "ratio"
    );
    for r in prop4_rows(&sweep) {
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>8.4}",
            r.alpha.to_string(),
            r.max_poa,
            r.envelope,
            r.max_poa / r.envelope.max(1.0)
        );
    }
    let _ = prop4_envelope(7, bilateral_formation::prelude::Ratio::from(4));
}
